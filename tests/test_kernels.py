"""Differential parity suite for the kernel dispatch layer.

The gate the native backend merges behind: every kernel in
:data:`repro.kernels.DISPATCH_TABLE` is swept over randomized
(seeded, shrinkable — hypothesis) cases covering shapes, dtypes
(float32/float64), duplicate / empty / single-contributor segments and
non-contiguous views, asserting **bit** identity between the NumPy
reference and the compiled native backend — byte-for-byte via
``tobytes()``, so ``-0.0`` / ``0.0`` and last-ulp differences cannot
hide behind ``allclose``.

Also here: the dispatcher semantics (``resolve`` / ``use`` /
``active`` / ``REPRO_KERNELS``), the no-silent-fallback guard
(requesting ``"native"`` without a toolchain raises), the counted
per-call dtype fallbacks, the engine's ``kernel_fallback_rounds``
accounting, the ``scatter_sum`` int32 index-overflow regression, and
an end-to-end numpy-vs-native simulation parity check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import kernels
from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation
from repro.kernels import NativeKernelsUnavailable, _native
from repro.kernels._numpy import NumpyKernels, composite_indices

REFERENCE = NumpyKernels()

try:
    NATIVE = kernels.resolve("native")
    NATIVE_ERROR = None
except NativeKernelsUnavailable as exc:  # pragma: no cover - CI has a toolchain
    NATIVE = None
    NATIVE_ERROR = str(exc)

needs_native = pytest.mark.skipif(
    NATIVE is None, reason=f"native backend unavailable: {NATIVE_ERROR}"
)

#: Shared settings of the randomized sweeps: seeded/derandomized so CI
#: is reproducible, shrinkable by construction (hypothesis minimises
#: failing cases), no deadline (the first native call compiles).
SWEEP = settings(max_examples=60, deadline=None, derandomize=True)


def assert_bit_identical(actual: np.ndarray, expected: np.ndarray) -> None:
    """Byte-for-byte equality: dtype, shape, and every bit pattern."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    assert actual.dtype == expected.dtype
    assert actual.shape == expected.shape
    assert np.ascontiguousarray(actual).tobytes() == np.ascontiguousarray(
        expected
    ).tobytes()


def floats_for(dtype) -> st.SearchStrategy[float]:
    width = 32 if np.dtype(dtype) == np.float32 else 64
    return st.floats(-1e6, 1e6, allow_nan=False, width=width)


@st.composite
def segment_layouts(draw, max_segments: int = 8, max_len: int = 6):
    """Ragged lengths covering empty, single-row and duplicate segments."""
    num_segments = draw(st.integers(0, max_segments))
    lengths = np.array(
        [draw(st.integers(0, max_len)) for _ in range(num_segments)],
        dtype=np.int64,
    )
    return lengths


# ----------------------------------------------------------------------
# Per-kernel differential sweeps
# ----------------------------------------------------------------------


@needs_native
class TestScatterSumParity:
    @given(
        data=st.data(),
        num_items=st.integers(1, 12),
        dim=st.integers(0, 10),
        rows=st.integers(0, 40),
        ids_dtype=st.sampled_from([np.int32, np.int64]),
        grads_dtype=st.sampled_from([np.float64, np.float32]),
    )
    @SWEEP
    def test_matches_reference(
        self, data, num_items, dim, rows, ids_dtype, grads_dtype
    ):
        ids = data.draw(
            arrays(ids_dtype, (rows,), elements=st.integers(0, num_items - 1))
        )
        grads = data.draw(
            arrays(grads_dtype, (rows, dim), elements=floats_for(grads_dtype))
        )
        assert_bit_identical(
            NATIVE.scatter_sum(ids, grads, num_items),
            REFERENCE.scatter_sum(ids, grads, num_items),
        )

    def test_duplicate_ids_accumulate_in_row_order(self):
        # Catastrophic-cancellation rows make the accumulation order
        # observable: any reordering changes the float result.
        ids = np.zeros(4, dtype=np.int64)
        grads = np.array([[1e16], [1.0], [-1e16], [1.0]])
        assert_bit_identical(
            NATIVE.scatter_sum(ids, grads, 2),
            REFERENCE.scatter_sum(ids, grads, 2),
        )

    def test_negative_zero_rows_survive(self):
        ids = np.array([0, 1], dtype=np.int64)
        grads = np.array([[-0.0, 0.0], [-0.0, -0.0]])
        native = NATIVE.scatter_sum(ids, grads, 3)
        assert_bit_identical(native, REFERENCE.scatter_sum(ids, grads, 3))


@needs_native
class TestSegmentDivParity:
    @given(
        data=st.data(),
        lengths=segment_layouts(),
        dtype=st.sampled_from([np.float64, np.float32]),
    )
    @SWEEP
    def test_matches_reference(self, data, lengths, dtype):
        total = int(lengths.sum())
        values = data.draw(arrays(dtype, (total,), elements=floats_for(dtype)))
        assert_bit_identical(
            NATIVE.segment_div(values, lengths),
            REFERENCE.segment_div(values, lengths),
        )

    def test_preserves_dtype(self):
        lengths = np.array([2, 1], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        assert NATIVE.segment_div(values, lengths).dtype == np.float32


@needs_native
class TestSegmentSumsParity:
    @given(
        data=st.data(),
        lengths=segment_layouts(),
        dim=st.integers(0, 10),
        dtype=st.sampled_from([np.float64, np.float32]),
    )
    @SWEEP
    def test_matches_reference(self, data, lengths, dim, dtype):
        total = int(lengths.sum())
        rows = data.draw(arrays(dtype, (total, dim), elements=floats_for(dtype)))
        assert_bit_identical(
            NATIVE.segment_sums(rows, lengths, dim),
            REFERENCE.segment_sums(rows, lengths, dim),
        )

    def test_negative_zero_rows_sum_to_positive_zero(self):
        # np.add.reduce(axis=0) seeds with the additive identity +0.0,
        # so even a single -0.0 row reduces to +0.0 (identity + row
        # flips the sign bit); the native port must reproduce that.
        lengths = np.array([1, 2], dtype=np.int64)
        rows = np.array([[-0.0], [-0.0], [-0.0]])
        native = NATIVE.segment_sums(rows, lengths, 1)
        assert_bit_identical(native, REFERENCE.segment_sums(rows, lengths, 1))
        assert not np.signbit(native).any()


@needs_native
class TestPairwiseSqDistsParity:
    @given(
        data=st.data(),
        groups=st.integers(0, 4),
        n=st.integers(0, 7),
        dim=st.integers(0, 12),
    )
    @SWEEP
    def test_matches_reference(self, data, groups, n, dim):
        flat = data.draw(
            arrays(np.float64, (groups, n, dim), elements=floats_for(np.float64))
        )
        assert_bit_identical(
            NATIVE.pairwise_sq_dists(flat), REFERENCE.pairwise_sq_dists(flat)
        )

    def test_diagonal_is_inf(self):
        flat = np.random.default_rng(3).standard_normal((2, 5, 4))
        for backend in (NATIVE, REFERENCE):
            dists = backend.pairwise_sq_dists(flat)
            assert np.isinf(dists[:, np.arange(5), np.arange(5)]).all()


@needs_native
class TestStackedStepGradientsParity:
    @given(
        data=st.data(),
        rows=st.integers(0, 20),
        dim=st.integers(0, 10),
        server_lr=st.floats(0.01, 10.0, allow_nan=False),
        max_step=st.one_of(st.just(0.0), st.floats(0.001, 100.0)),
    )
    @SWEEP
    def test_matches_reference(self, data, rows, dim, server_lr, max_step):
        old = data.draw(
            arrays(np.float64, (rows, dim), elements=floats_for(np.float64))
        )
        new = data.draw(
            arrays(np.float64, (rows, dim), elements=floats_for(np.float64))
        )
        assert_bit_identical(
            NATIVE.stacked_step_gradients(old, new, server_lr, max_step),
            REFERENCE.stacked_step_gradients(old, new, server_lr, max_step),
        )

    def test_clipping_branch_bitwise(self):
        rng = np.random.default_rng(11)
        old = rng.standard_normal((16, 8))
        new = old + rng.standard_normal((16, 8)) * 5.0
        assert_bit_identical(
            NATIVE.stacked_step_gradients(old, new, 0.25, 1.0),
            REFERENCE.stacked_step_gradients(old, new, 0.25, 1.0),
        )


@needs_native
class TestRowDiffNormsParity:
    @given(data=st.data(), rows=st.integers(0, 30), dim=st.integers(0, 10))
    @SWEEP
    def test_matches_reference(self, data, rows, dim):
        a = data.draw(
            arrays(np.float64, (rows, dim), elements=floats_for(np.float64))
        )
        b = data.draw(
            arrays(np.float64, (rows, dim), elements=floats_for(np.float64))
        )
        assert_bit_identical(
            NATIVE.row_diff_norms(a, b), REFERENCE.row_diff_norms(a, b)
        )


@needs_native
class TestNonContiguousViews:
    """Native marshalling must make exact copies, never approximate ones."""

    def test_every_kernel_accepts_strided_views(self):
        rng = np.random.default_rng(17)
        base = rng.standard_normal((48, 24))
        rows = base[::2, ::3]  # non-contiguous in both axes
        lengths = np.array([5, 0, 10, 1, 8], dtype=np.int64)
        assert_bit_identical(
            NATIVE.segment_sums(rows, lengths, rows.shape[1]),
            REFERENCE.segment_sums(rows, lengths, rows.shape[1]),
        )
        ids = rng.integers(0, 6, size=rows.shape[0])
        assert_bit_identical(
            NATIVE.scatter_sum(ids, rows, 6), REFERENCE.scatter_sum(ids, rows, 6)
        )
        flat1d = base.ravel()[::5][:24]
        assert_bit_identical(
            NATIVE.segment_div(flat1d, lengths),
            REFERENCE.segment_div(flat1d, lengths),
        )
        stacks = np.lib.stride_tricks.sliding_window_view(base[:, 0], 6)[::4][
            None
        ]
        assert_bit_identical(
            NATIVE.pairwise_sq_dists(stacks), REFERENCE.pairwise_sq_dists(stacks)
        )
        old, new = base[::2, :8], base[1::2, :8]
        assert_bit_identical(
            NATIVE.stacked_step_gradients(old, new, 0.5, 1.0),
            REFERENCE.stacked_step_gradients(old, new, 0.5, 1.0),
        )
        assert_bit_identical(
            NATIVE.row_diff_norms(old, new), REFERENCE.row_diff_norms(old, new)
        )


# ----------------------------------------------------------------------
# Dispatch-table completeness
# ----------------------------------------------------------------------

#: Kernels this suite differentially covers.  Adding a kernel to
#: DISPATCH_TABLE without adding parity coverage fails the test below.
COVERED_KERNELS = {
    "scatter_sum",
    "segment_div",
    "segment_sums",
    "pairwise_sq_dists",
    "stacked_step_gradients",
    "row_diff_norms",
}


class TestDispatchTable:
    def test_every_table_kernel_has_parity_coverage(self):
        assert set(kernels.DISPATCH_TABLE) == COVERED_KERNELS

    def test_every_table_kernel_exists_on_both_backends(self):
        for name in kernels.DISPATCH_TABLE:
            assert callable(getattr(kernels, name))
            assert callable(getattr(REFERENCE, name))
            if NATIVE is not None:
                assert callable(getattr(NATIVE, name))


# ----------------------------------------------------------------------
# Dispatcher semantics
# ----------------------------------------------------------------------


class TestDispatcher:
    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.resolve(None).name == "numpy"
        assert kernels.active().name == "numpy"

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert kernels.resolve(None).name == "numpy"

    @needs_native
    def test_env_override_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "native")
        assert kernels.resolve(None) is NATIVE
        assert kernels.active() is NATIVE

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve("cuda")

    def test_resolve_returns_singletons(self):
        assert kernels.resolve("numpy") is kernels.resolve("numpy")

    @needs_native
    def test_use_scopes_and_nests(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.active().name == "numpy"
        with kernels.use("native") as backend:
            assert backend is NATIVE
            assert kernels.active() is NATIVE
            with kernels.use("numpy"):
                assert kernels.active().name == "numpy"
            assert kernels.active() is NATIVE
        assert kernels.active().name == "numpy"

    @needs_native
    def test_use_accepts_resolved_backend_object(self):
        with kernels.use(NATIVE):
            assert kernels.active() is NATIVE

    @needs_native
    def test_dispatch_functions_follow_active_backend(self):
        lengths = np.array([2, 1], dtype=np.int64)
        values = np.array([2.0, 4.0, 9.0])
        expected = REFERENCE.segment_div(values, lengths)
        with kernels.use("native"):
            assert_bit_identical(kernels.segment_div(values, lengths), expected)
        assert_bit_identical(kernels.segment_div(values, lengths), expected)


# ----------------------------------------------------------------------
# No-silent-fallback guard
# ----------------------------------------------------------------------


class TestNativeUnavailableGuard:
    def test_resolve_native_without_toolchain_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "_instances", {})
        monkeypatch.setattr(_native, "_find_compiler", lambda: None)
        with pytest.raises(NativeKernelsUnavailable, match="no C compiler"):
            kernels.resolve("native")

    def test_simulation_construction_fails_fast(
        self, monkeypatch, tiny_dataset
    ):
        monkeypatch.setattr(kernels, "_instances", {})
        monkeypatch.setattr(_native, "_find_compiler", lambda: None)
        config = ExperimentConfig(
            dataset=DatasetConfig(name="custom"),
            model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
            train=TrainConfig(rounds=2, users_per_round=8, kernels="native"),
            seed=3,
        )
        with pytest.raises(NativeKernelsUnavailable):
            FederatedSimulation(config, dataset=tiny_dataset)

    def test_missing_source_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "_instances", {})
        monkeypatch.setattr(
            _native, "_SOURCE", _native._SOURCE.with_name("_missing.c")
        )
        with pytest.raises(NativeKernelsUnavailable, match="source not found"):
            kernels.resolve("native")


# ----------------------------------------------------------------------
# Counted per-call dtype fallbacks + engine round accounting
# ----------------------------------------------------------------------


@needs_native
class TestFallbackAccounting:
    def test_f32_pairwise_falls_back_counted_and_exact(self):
        flat = np.random.default_rng(5).standard_normal((2, 4, 6)).astype(
            np.float32
        )
        before = NATIVE.fallback_calls
        out = NATIVE.pairwise_sq_dists(flat)
        assert NATIVE.fallback_calls == before + 1
        assert_bit_identical(out, REFERENCE.pairwise_sq_dists(flat))

    def test_f16_segment_div_falls_back_counted_and_exact(self):
        lengths = np.array([2, 3], dtype=np.int64)
        values = np.arange(5, dtype=np.float16)
        before = NATIVE.fallback_calls
        out = NATIVE.segment_div(values, lengths)
        assert NATIVE.fallback_calls == before + 1
        assert_bit_identical(out, REFERENCE.segment_div(values, lengths))

    def test_native_served_calls_do_not_count(self):
        before = NATIVE.fallback_calls
        NATIVE.segment_div(np.ones(3), np.array([3], dtype=np.int64))
        assert NATIVE.fallback_calls == before


class _FallbackStub:
    """A backend that reports one counted fallback per segment_div call."""

    name = "native"

    def __init__(self, inner):
        self._inner = inner
        self.fallback_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def segment_div(self, values, lengths):
        self.fallback_calls += 1
        return self._inner.segment_div(values, lengths)


class TestEngineFallbackRounds:
    def test_rounds_with_fallbacks_are_counted_once(self, tiny_dataset):
        config = ExperimentConfig(
            dataset=DatasetConfig(name="custom"),
            model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
            train=TrainConfig(rounds=2, users_per_round=8, lr=1.0),
            seed=3,
        )
        sim = FederatedSimulation(config, dataset=tiny_dataset)
        engine = sim._batch_engine
        stub = _FallbackStub(kernels.resolve("numpy"))
        engine.kernel_backend = stub
        sim.run_round(0)
        # segment_div runs many times per round; the round counts once.
        assert stub.fallback_calls >= 1
        assert engine.kernel_fallback_rounds == 1
        sim.run_round(1)
        assert engine.kernel_fallback_rounds == 2

    def test_clean_rounds_count_zero(self, tiny_dataset):
        config = ExperimentConfig(
            dataset=DatasetConfig(name="custom"),
            model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
            train=TrainConfig(rounds=2, users_per_round=8, lr=1.0),
            seed=3,
        )
        sim = FederatedSimulation(config, dataset=tiny_dataset)
        sim.run_round(0)
        assert sim._batch_engine.kernel_fallback_rounds == 0


# ----------------------------------------------------------------------
# scatter_sum int32 index-overflow regression
# ----------------------------------------------------------------------


class TestScatterIndexOverflow:
    def test_composite_indices_upcast_beyond_int32(self):
        # 99_999 * 30_000 = 2.99e9 > 2**31 - 1: the pre-fix composite
        # (item_ids[:, None] * dim in the ids' own dtype) wrapped
        # negative here under NumPy 2 weak promotion.
        ids = np.array([99_999], dtype=np.int32)
        dim = 30_000
        out = composite_indices(ids, dim)
        assert out.dtype == np.int64
        assert out[0] == 99_999 * 30_000
        assert out[-1] == 99_999 * 30_000 + dim - 1
        assert (out >= 0).all()

    @given(
        data=st.data(),
        num_items=st.integers(1, 50),
        dim=st.integers(1, 8),
        rows=st.integers(0, 30),
    )
    @SWEEP
    def test_int32_and_int64_ids_are_equivalent(self, data, num_items, dim, rows):
        ids64 = data.draw(
            arrays(np.int64, (rows,), elements=st.integers(0, num_items - 1))
        )
        assert_bit_identical(
            composite_indices(ids64.astype(np.int32), dim),
            composite_indices(ids64, dim),
        )

    def test_scatter_sum_int32_ids_match_int64(self):
        rng = np.random.default_rng(23)
        ids64 = rng.integers(0, 100, size=500)
        grads = rng.standard_normal((500, 16))
        assert_bit_identical(
            kernels.scatter_sum(ids64.astype(np.int32), grads, 100),
            kernels.scatter_sum(ids64, grads, 100),
        )


# ----------------------------------------------------------------------
# End-to-end engine parity: numpy vs native, full simulation
# ----------------------------------------------------------------------


@needs_native
class TestEndToEndBackendParity:
    def _run(self, tiny_dataset, backend: str, defense: str):
        config = ExperimentConfig(
            dataset=DatasetConfig(name="custom"),
            model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
            train=TrainConfig(
                rounds=6, users_per_round=24, lr=1.0, kernels=backend
            ),
            attack=AttackConfig(
                name="pieck_uea", malicious_ratio=0.15, mining_rounds=2
            ),
            defense=DefenseConfig(name=defense),
            seed=3,
        )
        sim = FederatedSimulation(config, dataset=tiny_dataset)
        result = sim.run()
        return sim, result

    @pytest.mark.parametrize("defense", ["none", "multi_krum"])
    def test_trajectories_bit_identical(self, tiny_dataset, defense):
        sim_np, res_np = self._run(tiny_dataset, "numpy", defense)
        sim_nat, res_nat = self._run(tiny_dataset, "native", defense)
        assert sim_nat.kernel_backend is NATIVE
        assert_bit_identical(
            sim_nat.model.item_embeddings, sim_np.model.item_embeddings
        )
        assert_bit_identical(
            sim_nat.user_embedding_matrix(), sim_np.user_embedding_matrix()
        )
        assert res_nat.exposure == res_np.exposure
        assert res_nat.hit_ratio == res_np.hit_ratio
        assert sim_nat._batch_engine.kernel_fallback_rounds == 0
