"""Asynchronous event-driven federation: the two contracts.

Contract 1 (sync equivalence): the *degenerate* asynchronous
configuration — instant traffic, zero compute/network latency, no
churn, buffer = wave cohort — reproduces the synchronous batch engine
**bit for bit**: item embeddings, interaction parameters, user
embeddings and eval history, across attacks x defenses x model kinds.
``AsyncConfig(enabled=True)`` with no other arguments IS that
degenerate configuration by design.

Contract 2 (determinism): the same seed replays the identical event
interleaving — arrivals, cancellations, deadline closures — so two
runs of any asynchronous configuration are bit-identical, including
every ``AsyncStats`` counter.

Also here: churn/staleness semantics, counter conservation (no upload
is silently dropped), checkpoint/resume mid-stream, configuration
validation, and engine-compatibility guards.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import (
    AsyncConfig,
    AttackConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    FaultConfig,
)
from repro.federated.clock import AsyncPlan, EventQueue, VirtualClock
from repro.federated.simulation import FederatedSimulation

#: A busy non-degenerate configuration: bursty arrivals, real latency,
#: churn, a buffer smaller than the cohort, and a staleness cap.
CHURNY = AsyncConfig(
    enabled=True,
    traffic="poisson",
    arrival_rate=6.0,
    compute_mean=0.2,
    network_mean=0.4,
    churn_rate=0.15,
    buffer_size=8,
    round_deadline=1.5,
    staleness_discount=0.6,
    max_staleness=4,
)


def _config(model_kind="mf", attack="pieck_uea", defense="none", **kwargs):
    if model_kind == "mf":
        model = ModelConfig(kind="mf", embedding_dim=8, seed=3)
        train = TrainConfig(rounds=8, users_per_round=16, lr=1.0, eval_every=4)
    else:
        model = ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3)
        train = TrainConfig(rounds=8, users_per_round=16, lr=0.05, eval_every=4)
    kwargs.setdefault(
        "attack", AttackConfig(name=attack, malicious_ratio=0.2, mining_rounds=2)
    )
    kwargs.setdefault("defense", DefenseConfig(name=defense))
    return ExperimentConfig(model=model, train=train, seed=3, **kwargs)


def _snapshot(sim: FederatedSimulation, result) -> dict:
    return {
        "items": sim.model.item_embeddings.copy(),
        "params": [p.copy() for p in sim.model.interaction_params()],
        "users": sim.state.user_embeddings.copy(),
        "history": result.history,
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "async_stats": result.async_stats,
    }


def _assert_bit_identical(a: dict, b: dict) -> None:
    assert a["items"].tobytes() == b["items"].tobytes()
    for pa, pb in zip(a["params"], b["params"]):
        assert pa.tobytes() == pb.tobytes()
    assert a["users"].tobytes() == b["users"].tobytes()
    assert a["history"] == b["history"]
    assert a["exposure"] == b["exposure"]
    assert a["hit_ratio"] == b["hit_ratio"]


class TestSyncEquivalence:
    """Degenerate async == synchronous batch engine, bit for bit."""

    def test_degenerate_defaults_match_sync(self, tiny_dataset):
        cfg = _config("mf")
        sync = FederatedSimulation(cfg, tiny_dataset, engine="batch")
        ref = _snapshot(sync, sync.run())
        acfg = dataclasses.replace(cfg, asynchrony=AsyncConfig(enabled=True))
        asim = FederatedSimulation(acfg, tiny_dataset, engine="batch")
        got = _snapshot(asim, asim.run())
        _assert_bit_identical(got, ref)
        # Every upload arrived and applied un-discounted.
        stats = got["async_stats"]
        assert stats.uploads_applied == stats.clients_dispatched > 0
        assert stats.uploads_cancelled == 0
        assert stats.stale_applied == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("model_kind", ["mf", "ncf"])
    @pytest.mark.parametrize("attack", ["none", "pieck_uea", "pieck_ipe"])
    @pytest.mark.parametrize("defense", ["none", "median", "regularization"])
    def test_degenerate_grid(self, tiny_dataset, model_kind, attack, defense):
        cfg = _config(model_kind, attack, defense)
        sync = FederatedSimulation(cfg, tiny_dataset, engine="batch")
        ref = _snapshot(sync, sync.run())
        acfg = dataclasses.replace(cfg, asynchrony=AsyncConfig(enabled=True))
        asim = FederatedSimulation(acfg, tiny_dataset, engine="batch")
        _assert_bit_identical(_snapshot(asim, asim.run()), ref)

    def test_explicit_degenerate_values_match_defaults(self, tiny_dataset):
        # Writing the degenerate values out longhand changes nothing.
        cfg = _config("mf")
        explicit = AsyncConfig(
            enabled=True,
            traffic="instant",
            compute_mean=0.0,
            network_mean=0.0,
            churn_rate=0.0,
            buffer_size=0,
            round_interval=1.0,
            round_deadline=1.0,
        )
        a = FederatedSimulation(
            dataclasses.replace(cfg, asynchrony=AsyncConfig(enabled=True)),
            tiny_dataset,
        )
        ra = _snapshot(a, a.run())
        b = FederatedSimulation(
            dataclasses.replace(cfg, asynchrony=explicit), tiny_dataset
        )
        _assert_bit_identical(_snapshot(b, b.run()), ra)


class TestDeterminism:
    def test_same_seed_bit_identical(self, tiny_dataset):
        cfg = _config("mf", attack="pieck_ipe", defense="median",
                      asynchrony=CHURNY)
        a = FederatedSimulation(cfg, tiny_dataset)
        ra = _snapshot(a, a.run())
        b = FederatedSimulation(cfg, tiny_dataset)
        rb = _snapshot(b, b.run())
        _assert_bit_identical(ra, rb)
        assert ra["async_stats"] == rb["async_stats"]
        # The run actually exercised the asynchronous paths.
        stats = ra["async_stats"]
        assert stats.uploads_cancelled > 0
        assert stats.stale_applied > 0

    def test_different_seed_diverges(self, tiny_dataset):
        cfg = _config("mf", asynchrony=CHURNY)
        a = FederatedSimulation(cfg, tiny_dataset)
        a.run()
        other = dataclasses.replace(cfg, seed=11)
        b = FederatedSimulation(other, tiny_dataset)
        b.run()
        assert (
            a.model.item_embeddings.tobytes() != b.model.item_embeddings.tobytes()
        )

    def test_plan_is_pure_function_of_seed_and_wave(self):
        plan = AsyncPlan(CHURNY, seed=5)
        a = plan.wave_schedule(3, 12)
        b = AsyncPlan(CHURNY, seed=5).wave_schedule(3, 12)
        assert a.offsets.tobytes() == b.offsets.tobytes()
        assert a.compute.tobytes() == b.compute.tobytes()
        assert a.network.tobytes() == b.network.tobytes()
        assert a.cancelled.tobytes() == b.cancelled.tobytes()
        # Waves draw from independent spawned streams.
        c = plan.wave_schedule(4, 12)
        assert a.offsets.tobytes() != c.offsets.tobytes()


class TestChurnAndStaleness:
    def test_total_churn_cancels_everything(self, tiny_dataset):
        cfg = _config(
            "mf",
            asynchrony=dataclasses.replace(CHURNY, churn_rate=1.0),
        )
        sim = FederatedSimulation(cfg, tiny_dataset)
        before = sim.model.item_embeddings.copy()
        result = sim.run()
        stats = result.async_stats
        assert stats.uploads_cancelled == stats.clients_dispatched > 0
        assert stats.uploads_arrived == 0
        assert stats.uploads_applied == 0
        assert stats.empty_rounds == result.rounds_run
        # No upload ever reached the server: the model is untouched.
        assert sim.model.item_embeddings.tobytes() == before.tobytes()

    def test_latency_produces_stale_applications(self, tiny_dataset):
        cfg = _config(
            "mf",
            asynchrony=AsyncConfig(
                enabled=True, network_mean=3.0, round_deadline=0.5,
                staleness_discount=0.5,
            ),
        )
        result = FederatedSimulation(cfg, tiny_dataset).run()
        stats = result.async_stats
        assert stats.stale_applied > 0
        assert stats.max_staleness_applied >= 1

    def test_max_staleness_drops(self, tiny_dataset):
        cfg = _config(
            "mf",
            asynchrony=AsyncConfig(
                enabled=True, network_mean=6.0, round_deadline=0.25,
                max_staleness=1,
            ),
        )
        stats = FederatedSimulation(cfg, tiny_dataset).run().async_stats
        assert stats.stale_dropped > 0
        assert stats.max_staleness_applied <= 1

    def test_counter_conservation(self, tiny_dataset):
        for asyn in (CHURNY, AsyncConfig(enabled=True),
                     dataclasses.replace(CHURNY, churn_rate=0.5)):
            cfg = _config("mf", asynchrony=asyn)
            stats = FederatedSimulation(cfg, tiny_dataset).run().async_stats
            assert stats.clients_dispatched == (
                stats.uploads_cancelled
                + stats.uploads_arrived
                + stats.uploads_in_flight
            )
            assert stats.uploads_arrived == (
                stats.uploads_applied
                + stats.stale_dropped
                + stats.uploads_buffered
            )
            assert stats.rounds_closed_by_buffer + stats.rounds_closed_by_deadline == 8


class TestCheckpointResume:
    def test_mid_stream_resume_bit_identical(self, tiny_dataset, tmp_path):
        # The hard case: in-flight uploads and a part-filled buffer
        # cross the checkpoint boundary inside the pickled event heap.
        cfg = _config("mf", attack="pieck_ipe", defense="median",
                      asynchrony=CHURNY)
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref = _snapshot(reference, reference.run())
        assert ref["async_stats"].uploads_in_flight > 0  # heap non-empty

        ckpt_dir = str(tmp_path / "ckpt")
        first = FederatedSimulation(cfg, tiny_dataset)
        first.run(rounds=5, checkpoint_dir=ckpt_dir, checkpoint_every=2)
        resumed = FederatedSimulation(cfg, tiny_dataset)
        got = _snapshot(resumed, resumed.run(checkpoint_dir=ckpt_dir,
                                             checkpoint_every=2))
        _assert_bit_identical(got, ref)
        assert got["async_stats"] == ref["async_stats"]

    def test_sync_checkpoint_rejected_by_async_sim(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = str(tmp_path / "ckpt")
        FederatedSimulation(cfg, tiny_dataset).run(
            rounds=4, checkpoint_dir=ckpt_dir, checkpoint_every=2
        )
        acfg = dataclasses.replace(cfg, asynchrony=AsyncConfig(enabled=True))
        with pytest.raises(ValueError, match="config"):
            FederatedSimulation(acfg, tiny_dataset).run(
                checkpoint_dir=ckpt_dir, checkpoint_every=2
            )


class TestGuards:
    def test_loop_engine_rejected(self, tiny_dataset):
        cfg = _config("mf", asynchrony=AsyncConfig(enabled=True))
        with pytest.raises(ValueError, match="batch"):
            FederatedSimulation(cfg, tiny_dataset, engine="loop")

    def test_faults_and_async_mutually_exclusive(self, tiny_dataset):
        cfg = _config(
            "mf",
            asynchrony=AsyncConfig(enabled=True),
            faults=FaultConfig(dropout_rate=0.5),
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            FederatedSimulation(cfg, tiny_dataset)

    def test_server_gate_still_allowed(self, tiny_dataset):
        # min_quorum / max_upload_norm are server-side and compose with
        # the async engine.
        cfg = _config(
            "mf",
            asynchrony=AsyncConfig(enabled=True),
            faults=FaultConfig(min_quorum=2, max_upload_norm=1e6),
        )
        FederatedSimulation(cfg, tiny_dataset).run(rounds=2)

    def test_out_of_order_round_rejected(self, tiny_dataset):
        cfg = _config("mf", asynchrony=AsyncConfig(enabled=True))
        sim = FederatedSimulation(cfg, tiny_dataset)
        with pytest.raises(RuntimeError, match="round"):
            sim._async_engine.run_round(3)

    def test_clock_rejects_backwards_time(self):
        clock = VirtualClock()
        clock.advance(2.0)
        with pytest.raises(ValueError):
            clock.advance(1.0)

    def test_event_queue_orders_deadline_before_dispatch(self):
        from repro.federated.clock import (
            PRIORITY_ARRIVAL,
            PRIORITY_DEADLINE,
            PRIORITY_DISPATCH,
        )

        queue = EventQueue()
        queue.push(1.0, PRIORITY_ARRIVAL, "arrival")
        queue.push(1.0, PRIORITY_DISPATCH, "dispatch")
        queue.push(1.0, PRIORITY_DEADLINE, "deadline")
        order = [queue.pop()[2] for _ in range(3)]
        assert order == ["deadline", "dispatch", "arrival"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"traffic": "carrier-pigeon"},
            {"traffic": "trace"},  # trace requires offsets
            {"traffic": "trace", "trace_offsets": (0.5, -1.0)},
            {"arrival_rate": 0.0},
            {"compute_mean": -0.1},
            {"network_mean": -0.1},
            {"churn_rate": 1.5},
            {"buffer_size": -1},
            {"round_interval": 0.0},
            {"round_deadline": 0.0},
            {"staleness_discount": 0.0},
            {"staleness_discount": 1.5},
            {"max_staleness": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AsyncConfig(enabled=True, **kwargs)

    def test_trace_traffic_cycles_offsets(self, tiny_dataset):
        cfg = _config(
            "mf",
            asynchrony=AsyncConfig(
                enabled=True, traffic="trace", trace_offsets=(0.0, 0.25, 0.5)
            ),
        )
        stats = FederatedSimulation(cfg, tiny_dataset).run().async_stats
        assert stats.uploads_applied > 0

    def test_results_roundtrip_async_stats(self, tiny_dataset, tmp_path):
        from repro import persistence

        cfg = _config("mf", asynchrony=CHURNY)
        result = FederatedSimulation(cfg, tiny_dataset).run()
        path = str(tmp_path / "result.json")
        persistence.save_result(result, path)
        loaded = persistence.load_result(path)
        assert loaded.async_stats == result.async_stats
