"""Tests for negative sampling and local batch construction."""

import numpy as np

from repro.datasets.sampling import sample_local_batch, sample_negatives
from repro.rng import make_rng


class TestSampleNegatives:
    def test_disjoint_from_positives(self):
        rng = make_rng(0)
        positives = np.array([1, 3, 5])
        for _ in range(20):
            negs = sample_negatives(rng, positives, 20, 5)
            assert not set(negs.tolist()) & {1, 3, 5}

    def test_count_and_uniqueness(self):
        rng = make_rng(1)
        negs = sample_negatives(rng, np.array([0]), 100, 30)
        assert len(negs) == 30
        assert len(np.unique(negs)) == 30

    def test_zero_count(self):
        rng = make_rng(2)
        assert len(sample_negatives(rng, np.array([0]), 10, 0)) == 0

    def test_exhausted_pool_returns_complement(self):
        rng = make_rng(3)
        positives = np.array([0, 1, 2])
        negs = sample_negatives(rng, positives, 5, 10)
        assert set(negs.tolist()) == {3, 4}

    def test_no_negatives_available(self):
        rng = make_rng(4)
        positives = np.arange(5)
        assert len(sample_negatives(rng, positives, 5, 3)) == 0

    def test_scarce_pool_partial_sample(self):
        rng = make_rng(5)
        positives = np.arange(8)
        negs = sample_negatives(rng, positives, 10, 1)
        assert len(negs) == 1
        assert negs[0] in (8, 9)


class TestSampleLocalBatch:
    def test_labels_align_with_items(self):
        rng = make_rng(6)
        positives = np.array([2, 4])
        items, labels = sample_local_batch(rng, positives, 50, negative_ratio=2)
        assert len(items) == len(labels) == 6
        np.testing.assert_array_equal(labels[:2], [1.0, 1.0])
        np.testing.assert_array_equal(labels[2:], np.zeros(4))
        np.testing.assert_array_equal(items[:2], positives)

    def test_q_ratio_respected(self):
        rng = make_rng(7)
        positives = np.arange(5)
        for q in (1, 3):
            items, labels = sample_local_batch(rng, positives, 200, negative_ratio=q)
            assert int(labels.sum()) == 5
            assert len(items) == 5 * (q + 1)

    def test_batch_items_unique(self):
        rng = make_rng(8)
        items, _ = sample_local_batch(rng, np.array([1, 2, 3]), 30, 1)
        assert len(np.unique(items)) == len(items)
