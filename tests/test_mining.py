"""Tests for Δ-Norm tracking and popular item mining (Algorithm 1)."""

import numpy as np
import pytest

from repro.attacks.mining import DeltaNormTracker, PopularItemMiner
from repro.rng import make_rng


class TestDeltaNormTracker:
    def test_first_observation_initialises(self):
        tracker = DeltaNormTracker(5)
        tracker.observe(np.zeros((5, 3)))
        assert tracker.num_deltas == 0
        np.testing.assert_array_equal(tracker.accumulated, np.zeros(5))

    def test_accumulates_l2_norms(self):
        tracker = DeltaNormTracker(3)
        m0 = np.zeros((3, 2))
        m1 = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 0.0]])
        tracker.observe(m0)
        tracker.observe(m1)
        np.testing.assert_allclose(tracker.accumulated, [5.0, 0.0, 1.0])
        tracker.observe(m0)  # moving back accumulates again
        np.testing.assert_allclose(tracker.accumulated, [10.0, 0.0, 2.0])

    def test_top_items_descending(self):
        tracker = DeltaNormTracker(4)
        tracker.observe(np.zeros((4, 2)))
        tracker.observe(np.array([[1.0, 0], [3.0, 0], [2.0, 0], [0.0, 0]]))
        np.testing.assert_array_equal(tracker.top_items(2), [1, 2])

    def test_shape_mismatch_rejected(self):
        tracker = DeltaNormTracker(4)
        with pytest.raises(ValueError, match="expected 4"):
            tracker.observe(np.zeros((5, 2)))

    def test_observe_copies_matrix(self):
        tracker = DeltaNormTracker(2)
        matrix = np.zeros((2, 2))
        tracker.observe(matrix)
        matrix += 1.0  # mutate caller's array
        tracker.observe(matrix)
        # Δ-Norm must reflect the values at observation time.
        np.testing.assert_allclose(tracker.accumulated, [np.sqrt(2), np.sqrt(2)])


class TestPopularItemMiner:
    def test_ready_after_mining_rounds_plus_one(self):
        miner = PopularItemMiner(4, mining_rounds=2, num_popular=2)
        for step in range(3):
            assert not miner.ready
            miner.observe(np.full((4, 2), float(step)))
        assert miner.ready

    def test_not_ready_raises(self):
        miner = PopularItemMiner(4, 2, 2)
        with pytest.raises(RuntimeError, match="not mined"):
            miner.popular_items()

    def test_mined_set_frozen_after_ready(self):
        miner = PopularItemMiner(3, 1, 1)
        miner.observe(np.zeros((3, 2)))
        miner.observe(np.array([[5.0, 0], [0, 0], [0, 0]]))
        first = miner.popular_items().copy()
        # Later observations (with a different top item) are ignored.
        miner.observe(np.array([[5.0, 0], [99.0, 0], [0, 0]]))
        np.testing.assert_array_equal(miner.popular_items(), first)

    def test_identifies_high_churn_items(self):
        rng = make_rng(0)
        miner = PopularItemMiner(10, mining_rounds=3, num_popular=3)
        matrix = np.zeros((10, 4))
        hot = [2, 5, 7]
        for _ in range(4):
            matrix = matrix.copy()
            matrix[hot] += rng.normal(scale=1.0, size=(3, 4))
            matrix += rng.normal(scale=0.01, size=(10, 4))  # background noise
            miner.observe(matrix)
        assert set(miner.popular_items().tolist()) == set(hot)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PopularItemMiner(4, 0, 2)
        with pytest.raises(ValueError):
            PopularItemMiner(4, 2, 0)

    def test_mined_in_simulated_training(self, tiny_mf_config):
        """End-to-end: mining during real FRS training finds head items."""
        from repro.federated.simulation import FederatedSimulation

        sim = FederatedSimulation(tiny_mf_config)
        miner = PopularItemMiner(
            sim.dataset.num_items, mining_rounds=3, num_popular=10
        )
        for round_idx in range(10):
            miner.observe(sim.model.item_embeddings)
            sim.run_round(round_idx)
        assert miner.ready
        rank_of = sim.dataset.popularity_rank_of()
        mined_ranks = rank_of[miner.popular_items()]
        head = int(0.3 * sim.dataset.num_items)
        # A clear majority of mined items are genuinely popular.
        assert (mined_ranks < head).mean() >= 0.6
