"""Checkpoint/resume: the bit-identity contract.

The contract under test: a run interrupted at any checkpoint boundary
and resumed in a *fresh process-equivalent* simulation (new object, same
config) produces final state — metrics, embeddings, interaction
parameters, fault counters, audit log, history — **bit-identical** to
the same run never interrupted.  Holds on both engines, under attacks,
under fault injection, and on the native kernel backend.

Also here: the failure modes that must be loud — config digest
mismatch, engine mismatch, version mismatch, corrupt files — and the
crash-safety of the atomic writer.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import numpy as np
import pytest

from repro import kernels, persistence
from repro.config import (
    AttackConfig,
    ExperimentConfig,
    FaultConfig,
    ModelConfig,
    TrainConfig,
)
from repro.federated.simulation import FederatedSimulation
from repro.kernels import NativeKernelsUnavailable

try:
    NATIVE = kernels.resolve("native")
    NATIVE_ERROR = None
except NativeKernelsUnavailable as exc:  # pragma: no cover - CI has a toolchain
    NATIVE = None
    NATIVE_ERROR = str(exc)

needs_native = pytest.mark.skipif(
    NATIVE is None, reason=f"native backend unavailable: {NATIVE_ERROR}"
)

FAULTS = FaultConfig(
    dropout_rate=0.15,
    straggler_rate=0.1,
    straggler_max_delay=2,
    corruption_rate=0.05,
    corruption_mode="nan",
    min_quorum=2,
)


def _config(model_kind: str = "mf", **kwargs) -> ExperimentConfig:
    if model_kind == "mf":
        model = ModelConfig(kind="mf", embedding_dim=8, seed=3)
        train = TrainConfig(rounds=10, users_per_round=16, lr=1.0, eval_every=0)
    else:
        model = ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3)
        train = TrainConfig(rounds=10, users_per_round=16, lr=0.05, eval_every=0)
    kwargs.setdefault(
        "attack", AttackConfig(name="pieck_uea", malicious_ratio=0.2, mining_rounds=2)
    )
    return ExperimentConfig(model=model, train=train, seed=3, **kwargs)


def _final_state(sim: FederatedSimulation, result) -> dict:
    return {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "rounds_run": result.rounds_run,
        "fault_stats": result.fault_stats,
        "items": sim.model.item_embeddings.copy(),
        "params": [p.copy() for p in sim.model.interaction_params()],
        "users": sim.state.user_embeddings.copy(),
        "history": result.history,
    }


def _assert_identical(a: dict, b: dict) -> None:
    assert a["exposure"] == b["exposure"]
    assert a["hit_ratio"] == b["hit_ratio"]
    assert a["rounds_run"] == b["rounds_run"]
    assert a["fault_stats"] == b["fault_stats"]
    assert a["items"].tobytes() == b["items"].tobytes()
    for pa, pb in zip(a["params"], b["params"]):
        assert pa.tobytes() == pb.tobytes()
    assert a["users"].tobytes() == b["users"].tobytes()
    assert a["history"] == b["history"]


def _interrupted(cfg, dataset, engine, tmp_path, *, stop_after: int, every: int = 3):
    """Run ``stop_after`` rounds with checkpointing, then resume fresh."""
    ckpt_dir = str(tmp_path / "ckpt")
    first = FederatedSimulation(cfg, dataset, engine=engine)
    first.run(rounds=stop_after, checkpoint_dir=ckpt_dir, checkpoint_every=every)
    # A brand-new simulation object stands in for a fresh process.
    resumed = FederatedSimulation(cfg, dataset, engine=engine)
    result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=every)
    return _final_state(resumed, result)


class TestResumeBitIdentity:
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_mf_attack_resume(self, tiny_dataset, tmp_path, engine):
        cfg = _config("mf")
        reference = FederatedSimulation(cfg, tiny_dataset, engine=engine)
        ref_state = _final_state(reference, reference.run())
        _assert_identical(
            _interrupted(cfg, tiny_dataset, engine, tmp_path, stop_after=7),
            ref_state,
        )

    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_faulted_ncf_resume(self, tiny_dataset, tmp_path, engine):
        # Hardest case: NCF params, attack cohort, fault schedule with
        # in-flight stale uploads crossing the checkpoint boundary.
        cfg = _config("ncf", faults=FAULTS)
        reference = FederatedSimulation(cfg, tiny_dataset, engine=engine)
        ref_state = _final_state(reference, reference.run())
        assert ref_state["fault_stats"].any_fault
        _assert_identical(
            _interrupted(cfg, tiny_dataset, engine, tmp_path, stop_after=5, every=5),
            ref_state,
        )

    def test_resume_at_every_boundary(self, tiny_dataset, tmp_path):
        # The contract holds wherever the interrupt lands, not just at
        # one lucky boundary.
        cfg = _config("mf", faults=FAULTS)
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())
        for stop_after in (2, 4, 8):
            state = _interrupted(
                cfg, tiny_dataset, "batch", tmp_path / str(stop_after),
                stop_after=stop_after, every=2,
            )
            _assert_identical(state, ref_state)

    def test_history_survives_resume(self, tiny_dataset, tmp_path):
        cfg = dataclasses.replace(
            _config("mf"),
            train=TrainConfig(rounds=10, users_per_round=16, lr=1.0, eval_every=2),
        )
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())
        assert len(ref_state["history"]) > 1
        _assert_identical(
            _interrupted(cfg, tiny_dataset, "batch", tmp_path, stop_after=5, every=5),
            ref_state,
        )

    def test_audit_log_survives_resume(self, tiny_dataset, tmp_path):
        from repro.federated.audit import ServerAuditLog

        cfg = _config("mf", faults=FAULTS)
        ckpt_dir = str(tmp_path / "ckpt")
        reference = FederatedSimulation(cfg, tiny_dataset)
        reference.server.audit_log = ServerAuditLog()
        reference.run()

        first = FederatedSimulation(cfg, tiny_dataset)
        first.server.audit_log = ServerAuditLog()
        first.run(rounds=6, checkpoint_dir=ckpt_dir, checkpoint_every=3)
        resumed = FederatedSimulation(cfg, tiny_dataset)
        resumed.server.audit_log = ServerAuditLog()
        resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=3)

        ref_records = reference.server.audit_log.records
        res_records = resumed.server.audit_log.records
        assert len(ref_records) == len(res_records)
        for a, b in zip(ref_records, res_records):
            # Field-wise with equal_nan: the log records pre-gate, so
            # corrupted uploads legitimately carry NaN norms, and
            # dataclass == would fail on identical NaNs.
            for field in dataclasses.fields(a):
                va = getattr(a, field.name)
                vb = getattr(b, field.name)
                assert np.array_equal(va, vb, equal_nan=isinstance(va, float))

    @needs_native
    def test_native_backend_resume(self, tiny_dataset, tmp_path):
        cfg = _config("mf", faults=FAULTS)
        cfg = dataclasses.replace(
            cfg, train=dataclasses.replace(cfg.train, kernels="native")
        )
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())
        _assert_identical(
            _interrupted(cfg, tiny_dataset, "batch", tmp_path, stop_after=7),
            ref_state,
        )


class TestResumeGuards:
    def _checkpointed(self, cfg, dataset, tmp_path) -> str:
        ckpt_dir = str(tmp_path / "ckpt")
        sim = FederatedSimulation(cfg, dataset)
        sim.run(rounds=4, checkpoint_dir=ckpt_dir, checkpoint_every=2)
        return ckpt_dir

    def test_config_mismatch_raises(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = self._checkpointed(cfg, tiny_dataset, tmp_path)
        other = dataclasses.replace(cfg, seed=99)
        with pytest.raises(ValueError, match="config"):
            FederatedSimulation(other, tiny_dataset).run(
                checkpoint_dir=ckpt_dir, checkpoint_every=2
            )

    def test_engine_mismatch_raises(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = self._checkpointed(cfg, tiny_dataset, tmp_path)
        with pytest.raises(ValueError, match="engine"):
            FederatedSimulation(cfg, tiny_dataset, engine="loop").run(
                checkpoint_dir=ckpt_dir, checkpoint_every=2
            )

    def test_version_mismatch_raises(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = self._checkpointed(cfg, tiny_dataset, tmp_path)
        path = persistence.latest_checkpoint(ckpt_dir)
        assert path is not None
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["version"] = "ckpt-v0"
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(ValueError, match="version"):
            persistence.load_checkpoint(path)

    def test_garbage_file_raises(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        with open(path, "wb") as handle:
            pickle.dump(["not", "a", "checkpoint"], handle)
        with pytest.raises(ValueError):
            persistence.load_checkpoint(path)

    def test_fresh_run_ignores_checkpoint(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = self._checkpointed(cfg, tiny_dataset, tmp_path)
        result = FederatedSimulation(cfg, tiny_dataset).run(
            checkpoint_dir=ckpt_dir, checkpoint_every=2, resume=False
        )
        reference = FederatedSimulation(cfg, tiny_dataset).run()
        assert result.exposure == reference.exposure
        assert result.hit_ratio == reference.hit_ratio


class TestRetention:
    """Versioned checkpoints with ``checkpoint_keep`` pruning."""

    def test_keep_bounds_file_count(self, tiny_dataset, tmp_path):
        cfg = _config("mf")
        ckpt_dir = str(tmp_path / "ckpt")
        sim = FederatedSimulation(cfg, tiny_dataset)
        sim.run(rounds=9, checkpoint_dir=ckpt_dir, checkpoint_every=2,
                checkpoint_keep=2)
        rounds = [r for r, _ in persistence.list_checkpoints(ckpt_dir)]
        # Boundaries 2,4,6,8 were written; only the newest two survive.
        assert rounds == [6, 8]

    def test_resume_from_newest_survivor_is_bit_identical(
        self, tiny_dataset, tmp_path
    ):
        cfg = _config("mf", faults=FAULTS)
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())

        ckpt_dir = str(tmp_path / "ckpt")
        first = FederatedSimulation(cfg, tiny_dataset)
        first.run(rounds=7, checkpoint_dir=ckpt_dir, checkpoint_every=2,
                  checkpoint_keep=2)
        assert persistence.latest_checkpoint(ckpt_dir).endswith(
            "checkpoint-r000006.pkl"
        )
        resumed = FederatedSimulation(cfg, tiny_dataset)
        result = resumed.run(
            checkpoint_dir=ckpt_dir, checkpoint_every=2, checkpoint_keep=2
        )
        _assert_identical(_final_state(resumed, result), ref_state)

    def test_legacy_rolling_checkpoint_resumes(self, tiny_dataset, tmp_path):
        # A pre-retention run left a single rolling checkpoint.pkl;
        # resume must pick it up when no versioned file exists.
        cfg = _config("mf")
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())

        ckpt_dir = str(tmp_path / "ckpt")
        first = FederatedSimulation(cfg, tiny_dataset)
        first.run(rounds=4, checkpoint_dir=ckpt_dir, checkpoint_every=2)
        newest = persistence.latest_checkpoint(ckpt_dir)
        legacy = os.path.join(ckpt_dir, "checkpoint.pkl")
        os.replace(newest, legacy)
        for _, stale in persistence.list_checkpoints(ckpt_dir):
            os.unlink(stale)
        assert persistence.latest_checkpoint(ckpt_dir) == legacy

        resumed = FederatedSimulation(cfg, tiny_dataset)
        result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=2)
        _assert_identical(_final_state(resumed, result), ref_state)

    def test_prune_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            persistence.prune_checkpoints(str(tmp_path), 0)

    def test_run_rejects_bad_keep(self, tiny_dataset, tmp_path):
        sim = FederatedSimulation(_config("mf"), tiny_dataset)
        with pytest.raises(ValueError, match="checkpoint_keep"):
            sim.run(checkpoint_dir=str(tmp_path), checkpoint_keep=0)

    def test_foreign_files_ignored(self, tmp_path):
        d = str(tmp_path)
        open(os.path.join(d, "checkpoint-rabc.pkl"), "w").close()
        open(os.path.join(d, "checkpoint-r000004.pkl.123.tmp"), "w").close()
        open(os.path.join(d, "notes.txt"), "w").close()
        assert persistence.list_checkpoints(d) == []
        assert persistence.latest_checkpoint(d) is None
        assert persistence.prune_checkpoints(d, 1) == []


class TestCorruptionFallback:
    """Verify-on-read: torn checkpoints quarantine, resume falls back."""

    def test_bit_flipped_checkpoint_raises_integrity_error(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        persistence.save_checkpoint(path, {"round": 4})
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x04
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(persistence.IntegrityError):
            persistence.load_checkpoint(path)
        # The corrupt file was moved aside, never silently trusted.
        assert not os.path.exists(path)
        assert os.path.exists(path + persistence.QUARANTINE_SUFFIX)

    def test_truncated_checkpoint_raises_integrity_error(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        persistence.save_checkpoint(path, {"round": 4})
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(persistence.IntegrityError):
            persistence.load_checkpoint(path)
        assert os.path.exists(path + persistence.QUARANTINE_SUFFIX)

    def test_legacy_v2_checkpoint_still_loads(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        with open(path, "wb") as handle:
            pickle.dump({"version": "ckpt-v2", "payload": {"round": 6}}, handle)
        assert persistence.load_checkpoint(path)["round"] == 6

    def test_resume_falls_back_past_corrupt_newest(self, tiny_dataset, tmp_path):
        # Corrupt the newest retained checkpoint: resume must skip it
        # (quarantining it) and restart from the older survivor —
        # still bit-identical to the uninterrupted reference.
        cfg = _config("mf", faults=FAULTS)
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())

        ckpt_dir = str(tmp_path / "ckpt")
        first = FederatedSimulation(cfg, tiny_dataset)
        first.run(rounds=7, checkpoint_dir=ckpt_dir, checkpoint_every=2,
                  checkpoint_keep=3)
        newest = persistence.latest_checkpoint(ckpt_dir)
        blob = open(newest, "rb").read()
        with open(newest, "wb") as handle:
            handle.write(blob[: len(blob) // 2])

        resumed = FederatedSimulation(cfg, tiny_dataset)
        result = resumed.run(
            checkpoint_dir=ckpt_dir, checkpoint_every=2, checkpoint_keep=3
        )
        _assert_identical(_final_state(resumed, result), ref_state)
        assert os.path.exists(newest + persistence.QUARANTINE_SUFFIX)

    def test_resume_with_all_checkpoints_corrupt_restarts_clean(
        self, tiny_dataset, tmp_path
    ):
        cfg = _config("mf")
        reference = FederatedSimulation(cfg, tiny_dataset)
        ref_state = _final_state(reference, reference.run())

        ckpt_dir = str(tmp_path / "ckpt")
        first = FederatedSimulation(cfg, tiny_dataset)
        first.run(rounds=6, checkpoint_dir=ckpt_dir, checkpoint_every=2)
        for _, path in persistence.list_checkpoints(ckpt_dir):
            with open(path, "wb") as handle:
                handle.write(b"\x00torn")

        resumed = FederatedSimulation(cfg, tiny_dataset)
        result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=2)
        # Nothing resumable survived: the run restarted from round 0
        # and still reproduces the reference exactly.
        _assert_identical(_final_state(resumed, result), ref_state)


class TestAtomicWrites:
    def test_checkpoint_write_failure_leaves_previous_file(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        persistence.save_checkpoint(path, {"round": 1})
        # Simulate a crash mid-write: the writer raising must leave the
        # old complete file untouched and no temp litter.
        with pytest.raises(RuntimeError):
            persistence._replace_into(
                path, lambda tmp: (_ for _ in ()).throw(RuntimeError("disk died"))
            )
        assert persistence.load_checkpoint(path)["round"] == 1
        assert os.listdir(tmp_path) == ["checkpoint.pkl"]

    def test_no_temp_litter_after_save(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        persistence.save_checkpoint(path, {"round": 2})
        assert os.listdir(tmp_path) == ["checkpoint.pkl"]
        assert persistence.load_checkpoint(path)["round"] == 2
