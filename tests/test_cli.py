"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import _plot_figure, main
from repro.experiments.reporting import TableResult


class TestList:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pieck_uea" in out
        assert "regularization" in out
        assert "ml-100k" in out


class TestRun:
    def test_run_tiny_experiment(self, capsys, tmp_path):
        result_path = str(tmp_path / "out" / "result.json")
        model_path = str(tmp_path / "out" / "model.npz")
        code = main(
            [
                "run",
                "--dataset", "ml-100k",
                "--model", "mf",
                "--attack", "none",
                "--rounds", "3",
                "--eval-every", "2",
                "--save-result", result_path,
                "--save-model", model_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ER@10" in out
        assert os.path.exists(result_path)
        assert os.path.exists(model_path)
        payload = json.load(open(result_path))
        assert payload["rounds_run"] == 3
        # eval_every=2 plus the final round evaluation.
        assert [rec["round_idx"] for rec in payload["history"]] == [2, 3]

    def test_run_with_attack(self, capsys):
        code = main(
            ["run", "--attack", "pieck_uea", "--rounds", "3", "--seed", "1"]
        )
        assert code == 0
        assert "pieck_uea" in capsys.readouterr().out

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--attack", "not-an-attack"])

    def test_run_with_coordinated_defense(self, capsys):
        code = main(
            ["run", "--attack", "pieck_uea", "--defense", "coordinated",
             "--rounds", "3"]
        )
        assert code == 0
        assert "coordinated" in capsys.readouterr().out

    def test_invalid_table_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "42"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestFigurePlots:
    def test_fig6a_series_plot(self):
        table = TableResult("Fig 6a", ["Attack", "r50", "r100"])
        table.add_row("IPE", "90.0 / 50.0", "40.0 / 50.0")
        table.add_row("UEA", "95.0 / 50.0", "80.0 / 50.0")
        out = _plot_figure("6a", table)
        assert "ER@10 over rounds" in out
        assert "IPE" in out and "UEA" in out

    def test_fig6b_bar_chart(self):
        table = TableResult("Fig 6b", ["Model", "clean", "attack"])
        table.add_row("MF", "0.01", "0.02")
        out = _plot_figure("6b", table)
        assert "MF clean" in out
        assert "0.02 s" in out

    def test_fig7_line_plot(self):
        table = TableResult("Fig 7", ["q", "HR@10 (%)"])
        table.add_row("1", "44.0")
        table.add_row("8", "51.0")
        out = _plot_figure("7", table)
        assert "HR@10 vs sampling ratio q" in out

    def test_unplottable_figure_returns_none(self):
        table = TableResult("Fig 3", ["Dataset", "Gini"])
        table.add_row("ml-100k", "0.7")
        assert _plot_figure("3", table) is None


class TestAudit:
    def test_audit_command(self, capsys):
        code = main(["audit", "--attack", "pieck_uea", "--rounds", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Eq.11 predicted" in out
        assert "mass share" in out
        # At least one attacked item row is printed.
        assert len(out.strip().splitlines()) >= 4

    def test_audit_rejects_none_attack(self):
        with pytest.raises(SystemExit):
            main(["audit", "--attack", "none"])
