"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import _plot_figure, main, parse_async_spec, parse_fault_spec
from repro.experiments.reporting import TableResult


class TestList:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pieck_uea" in out
        assert "regularization" in out
        assert "ml-100k" in out


class TestRun:
    def test_run_tiny_experiment(self, capsys, tmp_path):
        result_path = str(tmp_path / "out" / "result.json")
        model_path = str(tmp_path / "out" / "model.npz")
        code = main(
            [
                "run",
                "--dataset", "ml-100k",
                "--model", "mf",
                "--attack", "none",
                "--rounds", "3",
                "--eval-every", "2",
                "--save-result", result_path,
                "--save-model", model_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ER@10" in out
        assert os.path.exists(result_path)
        assert os.path.exists(model_path)
        payload = json.load(open(result_path))
        assert payload["rounds_run"] == 3
        # eval_every=2 plus the final round evaluation.
        assert [rec["round_idx"] for rec in payload["history"]] == [2, 3]

    def test_run_with_attack(self, capsys):
        code = main(
            ["run", "--attack", "pieck_uea", "--rounds", "3", "--seed", "1"]
        )
        assert code == 0
        assert "pieck_uea" in capsys.readouterr().out

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--attack", "not-an-attack"])

    def test_run_with_coordinated_defense(self, capsys):
        code = main(
            ["run", "--attack", "pieck_uea", "--defense", "coordinated",
             "--rounds", "3"]
        )
        assert code == 0
        assert "coordinated" in capsys.readouterr().out

    def test_invalid_table_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "42"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestSpecParsing:
    """key=value spec parsers: aliases, conversion, did-you-mean."""

    def test_fault_spec_parses_aliases_and_full_names(self):
        cfg = parse_fault_spec("dropout=0.2,straggler_rate=0.1,quorum=4")
        assert cfg.dropout_rate == 0.2
        assert cfg.straggler_rate == 0.1
        assert cfg.min_quorum == 4

    def test_async_spec_parses_and_forces_enabled(self):
        cfg = parse_async_spec(
            "traffic=poisson,rate=6,churn=0.1,k=8,deadline=1.5,max-stale=3"
        )
        assert cfg.enabled is True
        assert cfg.traffic == "poisson"
        assert cfg.arrival_rate == 6.0
        assert cfg.churn_rate == 0.1
        assert cfg.buffer_size == 8
        assert cfg.round_deadline == 1.5
        assert cfg.max_staleness == 3

    def test_async_empty_spec_is_degenerate(self):
        from repro.config import AsyncConfig

        assert parse_async_spec("") == AsyncConfig(enabled=True)

    def test_async_trace_offsets_colon_separated(self):
        cfg = parse_async_spec("traffic=trace,trace=0.0:0.5:1.25")
        assert cfg.trace_offsets == (0.0, 0.5, 1.25)

    def test_fault_typo_suggests_field(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError) as err:
            parse_fault_spec("dropuot=0.2")
        message = str(err.value)
        assert "did you mean 'dropout'" in message
        assert "valid keys" in message
        assert "straggler_rate" in message

    def test_async_typo_suggests_field(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError) as err:
            parse_async_spec("dedline=2")
        assert "did you mean 'deadline'" in str(err.value)

    def test_unknown_key_without_close_match_lists_fields(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError) as err:
            parse_async_spec("zzzzqqq=1")
        message = str(err.value)
        assert "did you mean" not in message
        assert "valid keys" in message

    def test_not_key_value_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="key=value"):
            parse_async_spec("poisson")

    def test_bad_value_type_reported(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="cannot parse"):
            parse_async_spec("rate=fast")

    def test_invalid_config_value_reported(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="churn"):
            parse_async_spec("churn=2.0")

    def test_cli_rejects_bad_spec_with_clean_exit(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "--async", "dedline=2"])
        assert err.value.code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_run_async_prints_counter_table(self, capsys):
        code = main(
            [
                "run", "--attack", "pieck_uea", "--rounds", "3",
                "--async", "traffic=poisson,rate=8,network=0.5,churn=0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime counters:" in out
        assert "waves dispatched" in out
        assert "uploads cancelled" in out

    def test_run_degenerate_async_matches_sync_output(self, capsys):
        main(["run", "--rounds", "2", "--seed", "5"])
        sync_out = capsys.readouterr().out
        main(["run", "--rounds", "2", "--seed", "5", "--async", ""])
        async_out = capsys.readouterr().out
        sync_metrics = [ln for ln in sync_out.splitlines() if "ER@10" in ln]
        async_metrics = [ln for ln in async_out.splitlines() if "ER@10" in ln]
        assert sync_metrics == async_metrics


class TestFigurePlots:
    def test_fig6a_series_plot(self):
        table = TableResult("Fig 6a", ["Attack", "r50", "r100"])
        table.add_row("IPE", "90.0 / 50.0", "40.0 / 50.0")
        table.add_row("UEA", "95.0 / 50.0", "80.0 / 50.0")
        out = _plot_figure("6a", table)
        assert "ER@10 over rounds" in out
        assert "IPE" in out and "UEA" in out

    def test_fig6b_bar_chart(self):
        table = TableResult("Fig 6b", ["Model", "clean", "attack"])
        table.add_row("MF", "0.01", "0.02")
        out = _plot_figure("6b", table)
        assert "MF clean" in out
        assert "0.02 s" in out

    def test_fig7_line_plot(self):
        table = TableResult("Fig 7", ["q", "HR@10 (%)"])
        table.add_row("1", "44.0")
        table.add_row("8", "51.0")
        out = _plot_figure("7", table)
        assert "HR@10 vs sampling ratio q" in out

    def test_unplottable_figure_returns_none(self):
        table = TableResult("Fig 3", ["Dataset", "Gini"])
        table.add_row("ml-100k", "0.7")
        assert _plot_figure("3", table) is None


class TestAudit:
    def test_audit_command(self, capsys):
        code = main(["audit", "--attack", "pieck_uea", "--rounds", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Eq.11 predicted" in out
        assert "mass share" in out
        # At least one attacked item row is printed.
        assert len(out.strip().splitlines()) >= 4

    def test_audit_rejects_none_attack(self):
        with pytest.raises(SystemExit):
            main(["audit", "--attack", "none"])
