"""ClientStateStore: construction parity, CSR round-trip, chunked eval.

The store's contract is that struct-of-arrays client state is a pure
re-layout: every embedding row, interaction slice and per-client scalar
is bit-identical to what the object-per-user reference constructs, and
streaming (chunked) evaluation reproduces the dense single-pass metrics
exactly.
"""

import numpy as np
import pytest

from repro.config import TrainConfig, replace
from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.batch_engine import BatchClientEngine
from repro.federated.client import BenignClient
from repro.federated.simulation import FederatedSimulation
from repro.federated.state import ClientStateStore, ClientViewList
from repro.metrics.ranking import (
    exposure_counts_at_k,
    exposure_ratio_at_k,
    hit_counts_at_k,
    hit_ratio_at_k,
    sample_eval_negatives,
)
from repro.models.base import build_model
from repro.rng import (
    _pcg64_first_raw,
    _seed_sequence_states,
    spawn,
    spawn_first_uniform,
    spawn_normal_rows,
)


def ragged_lists(rng, num_users, num_items):
    """Random ragged positive-item lists, including an empty user."""
    lists = [
        np.sort(
            rng.choice(num_items, size=int(rng.integers(1, num_items // 2)), replace=False)
        ).astype(np.int64)
        for _ in range(num_users - 1)
    ]
    lists.insert(num_users // 2, np.empty(0, dtype=np.int64))
    return lists


# ----------------------------------------------------------------------
# Vectorised construction parity (bit-identical to per-user spawn)
# ----------------------------------------------------------------------


class TestConstructionParity:
    @pytest.mark.parametrize("seed", [0, 3, 11, 12345])
    def test_embedding_matrix_matches_per_user_spawn(self, seed):
        dim, users = 8, 64
        rows = spawn_normal_rows(seed, ("client-init",), np.arange(users), dim, scale=0.1)
        reference = np.stack(
            [
                spawn(seed, "client-init", u).normal(scale=0.1, size=dim)
                for u in range(users)
            ]
        )
        assert np.array_equal(rows, reference)

    @pytest.mark.parametrize("seed", [0, 7, 999])
    def test_store_matches_object_clients(self, seed):
        rng = np.random.default_rng(seed + 1)
        train_pos = ragged_lists(rng, 20, 50)
        store = ClientStateStore.build(train_pos, 50, 6, seed=seed, init_scale=0.05)
        for user, positives in enumerate(train_pos):
            client = BenignClient(user, positives, 50, 6, seed=seed, init_scale=0.05)
            assert np.array_equal(store.user_embeddings[user], client.user_embedding)
            assert np.array_equal(store.positives(user), client.positive_items)

    def test_pcg64_first_raw_matches_numpy(self):
        seeds = np.random.default_rng(5).integers(0, 2**31, 300)
        raw = _pcg64_first_raw(_seed_sequence_states(seeds))
        for seed, value in zip(seeds, raw):
            assert int(value) == int(np.random.PCG64(int(seed)).random_raw(1)[0])

    @pytest.mark.parametrize("seed", [0, 3, 42])
    def test_spawn_first_uniform_matches_spawn(self, seed):
        ids = np.arange(200)
        low, high = float(np.log(0.1)), float(np.log(2.0))
        vec = spawn_first_uniform(seed, ("client-lr",), ids, low, high)
        reference = np.array(
            [spawn(seed, "client-lr", int(u)).uniform(low, high) for u in ids]
        )
        assert np.array_equal(vec, reference)

    @pytest.mark.parametrize("seed", [0, 3, 42])
    def test_client_lrs_match_scalar_draws(self, seed):
        store = ClientStateStore.build(
            [np.array([0]), np.array([1]), np.array([2])], 10, 4, seed=seed
        )
        cfg = TrainConfig(client_lr_range=(0.1, 2.0))
        lrs = store.client_lrs(cfg.client_lr_range)
        for user in range(3):
            standalone = BenignClient(user, np.array([0]), 10, 4, seed=seed)
            assert lrs[user] == standalone._client_lr(cfg)
        # Cached: the same range returns the same array object.
        assert store.client_lrs(cfg.client_lr_range) is lrs

    def test_client_lrs_rejects_bad_range(self):
        store = ClientStateStore.build([np.array([0])], 5, 2)
        with pytest.raises(ValueError, match="client_lr_range"):
            store.client_lrs((0.0, 1.0))


# ----------------------------------------------------------------------
# CSR round-trip properties
# ----------------------------------------------------------------------


class TestCsrRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_ragged_to_csr_to_ragged(self, seed):
        rng = np.random.default_rng(seed)
        train_pos = ragged_lists(rng, 17, 40)
        store = ClientStateStore.build(train_pos, 40, 4, seed=seed)
        assert store.train_indptr[0] == 0
        assert store.train_indptr[-1] == sum(len(p) for p in train_pos)
        assert store.train_indices.dtype == np.int64
        for user, positives in enumerate(train_pos):
            assert np.array_equal(store.positives(user), positives)
        round_trip = store.to_ragged()
        assert len(round_trip) == len(train_pos)
        for got, expected in zip(round_trip, train_pos):
            assert np.array_equal(got, expected)

    def test_positive_slices_are_views(self):
        train_pos = [np.array([1, 3], dtype=np.int64), np.array([0], dtype=np.int64)]
        store = ClientStateStore.build(train_pos, 5, 2)
        view = store.positives(0)
        assert view.base is store.train_indices
        views = store.positives_list(np.array([1, 0]))
        assert np.array_equal(views[0], [0])
        assert np.array_equal(views[1], [1, 3])

    @pytest.mark.parametrize("seed", range(3))
    def test_train_mask_blocks_match_dense_mask(self, seed):
        dataset = generate_longtail_dataset(23, 31, 200, seed=seed)
        store = ClientStateStore.build(dataset.train_pos, dataset.num_items, 4)
        dense = dataset.train_mask()
        for lo, hi in [(0, 23), (0, 5), (5, 9), (22, 23), (7, 7)]:
            assert np.array_equal(store.train_mask_block(lo, hi), dense[lo:hi])

    def test_mismatched_indptr_rejected(self):
        with pytest.raises(ValueError, match="train_indptr"):
            ClientStateStore(
                np.zeros((2, 3)), np.zeros(4, dtype=np.int64),
                np.empty(0, dtype=np.int64), 5,
            )


# ----------------------------------------------------------------------
# View clients and the lazy view list
# ----------------------------------------------------------------------


class TestStoreBackedViews:
    def make_store(self, seed=0):
        train_pos = [np.array([0, 2], dtype=np.int64), np.array([1], dtype=np.int64)]
        return ClientStateStore.build(train_pos, 6, 4, seed=seed)

    def test_view_reads_and_writes_store_row(self):
        store = self.make_store()
        view = BenignClient.from_store(store, 1)
        assert np.array_equal(view.user_embedding, store.user_embeddings[1])
        view.user_embedding = np.full(4, 2.5)
        assert np.array_equal(store.user_embeddings[1], np.full(4, 2.5))
        assert np.array_equal(view.positive_items, [1])

    def test_view_participate_matches_standalone(self):
        seed = 9
        train_pos = [np.array([0, 2], dtype=np.int64), np.array([1, 3], dtype=np.int64)]
        store = ClientStateStore.build(train_pos, 6, 4, seed=seed)
        model_a = build_model("mf", 6, 4, seed=1)
        model_b = build_model("mf", 6, 4, seed=1)
        cfg = TrainConfig()
        view = BenignClient.from_store(store, 0)
        standalone = BenignClient(0, train_pos[0], 6, 4, seed=seed)
        update_view = view.participate(model_a, cfg, round_idx=0)
        update_ref = standalone.participate(model_b, cfg, round_idx=0)
        assert np.array_equal(update_view.item_ids, update_ref.item_ids)
        assert np.array_equal(update_view.item_grads, update_ref.item_grads)
        assert np.array_equal(store.user_embeddings[0], standalone.user_embedding)

    def test_view_list_is_lazy_and_cached(self):
        store = self.make_store()
        views = ClientViewList(store)
        assert len(views) == 2
        assert not views._views
        first = views[0]
        assert views[0] is first  # cached
        assert views[-1].user_id == 1
        assert [v.user_id for v in views] == [0, 1]
        assert [v.user_id for v in views[0:2]] == [0, 1]
        with pytest.raises(IndexError):
            views[2]
        with pytest.raises(IndexError):
            views[-3]

    def test_lazy_regularizers(self):
        created = []

        def factory():
            created.append(object())
            return created[-1]

        store = ClientStateStore.build(
            [np.array([0]), np.array([1])], 5, 2, regularizer_factory=factory
        )
        assert store.has_regularizers
        assert not created  # nothing until first access
        assert store.regularizer(1) is created[0]
        assert store.regularizer(1) is created[0]  # cached
        assert len(created) == 1
        store.set_regularizer(0, None)
        assert store.regularizer(0) is None
        assert len(created) == 1

    def test_no_factory_store_stays_regularizer_free(self):
        store = self.make_store()
        assert not store.has_regularizers
        assert store.regularizer(0) is None
        # Reading through a view must not cache dead entries or flip
        # the store into the "may carry regularizers" state.
        assert BenignClient.from_store(store, 1).regularizer is None
        assert not store._regularizers
        assert not store.has_regularizers


# ----------------------------------------------------------------------
# Chunked streaming evaluation
# ----------------------------------------------------------------------


class TestChunkedEvaluation:
    def test_score_blocks_cover_matrix(self):
        model = build_model("mf", 20, 4, seed=2)
        users = np.random.default_rng(0).normal(size=(11, 4))
        dense = model.score_matrix(users)
        spans = []
        blocks = []
        for lo, hi, scores in model.score_blocks(users, 3):
            spans.append((lo, hi))
            blocks.append(scores)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 11)]
        assert np.array_equal(np.concatenate(blocks), dense)
        with pytest.raises(ValueError, match="block_users"):
            next(model.score_blocks(users, 0))

    def test_streaming_counts_match_dense_metrics(self):
        dataset = generate_longtail_dataset(30, 40, 300, seed=4)
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(30, 40))
        mask = dataset.train_mask()
        targets = np.array([3, 17])
        negatives = sample_eval_negatives(dataset, 10, seed=0)
        er_hits = np.zeros(2, dtype=np.int64)
        er_eligible = np.zeros(2, dtype=np.int64)
        hr_hits = hr_total = 0
        for lo in range(0, 30, 7):
            hi = min(lo + 7, 30)
            hits, eligible = exposure_counts_at_k(
                scores[lo:hi], mask[lo:hi], targets, 5
            )
            er_hits += hits
            er_eligible += eligible
            hits, total = hit_counts_at_k(
                scores[lo:hi], dataset.test_items[lo:hi], negatives[lo:hi], 5
            )
            hr_hits += hits
            hr_total += total
        dense_er = exposure_ratio_at_k(scores, mask, targets, 5)
        dense_hr = hit_ratio_at_k(scores, dataset, negatives, 5)
        streamed_er = float(
            np.mean(np.where(er_eligible > 0, er_hits / np.maximum(er_eligible, 1), 0.0))
        )
        assert streamed_er == dense_er
        assert (hr_hits / hr_total) == dense_hr

    @pytest.mark.parametrize("kind", ["mf", "ncf"])
    def test_evaluate_independent_of_chunk_size(self, tiny_mf_config, tiny_ncf_config, kind):
        base = tiny_mf_config if kind == "mf" else tiny_ncf_config
        results = []
        for chunk in (None, 1, 3, 10_000):
            cfg = replace(base, train=replace(base.train, eval_chunk_users=chunk))
            sim = FederatedSimulation(cfg)
            sim.run(rounds=3)
            results.append(sim.evaluate())
        assert all(r == results[0] for r in results[1:])

    def test_bad_chunk_size_rejected(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, eval_chunk_users=0)
        )
        sim = FederatedSimulation(cfg)
        with pytest.raises(ValueError, match="eval_chunk_users"):
            sim.evaluate()

    def test_user_embedding_matrix_is_zero_copy(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        matrix = sim.user_embedding_matrix()
        assert matrix.base is sim.state.user_embeddings  # no copy
        assert not matrix.flags.writeable  # live state is read-only
        with pytest.raises(ValueError):
            matrix[0] = 0.0


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------


class TestFinalEvaluationReuse:
    def test_final_eval_reused_when_checkpoint_covers_it(self, tiny_mf_config, monkeypatch):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, rounds=10, eval_every=5)
        )
        sim = FederatedSimulation(cfg)
        calls = []
        original = FederatedSimulation.evaluate

        def counting(self, k=None):
            calls.append(1)
            return original(self, k)

        monkeypatch.setattr(FederatedSimulation, "evaluate", counting)
        result = sim.run()
        # Checkpoints at rounds 5 and 10; the final record reuses the
        # round-10 checkpoint instead of a third evaluation.
        assert len(calls) == 2
        assert [rec.round_idx for rec in result.history] == [5, 10]
        assert result.exposure == result.history[-1].exposure
        assert result.hit_ratio == result.history[-1].hit_ratio

    def test_final_eval_still_runs_without_checkpoint(self, tiny_mf_config, monkeypatch):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, rounds=7, eval_every=5)
        )
        sim = FederatedSimulation(cfg)
        calls = []
        original = FederatedSimulation.evaluate

        def counting(self, k=None):
            calls.append(1)
            return original(self, k)

        monkeypatch.setattr(FederatedSimulation, "evaluate", counting)
        result = sim.run()
        assert len(calls) == 2  # round 5 checkpoint + final round 7
        assert [rec.round_idx for rec in result.history] == [5, 7]


class TestUploadDtype:
    def _as_float32(self, sim):
        sim.model.item_embeddings = sim.model.item_embeddings.astype(np.float32)
        sim.state.user_embeddings = sim.state.user_embeddings.astype(np.float32)

    def test_loop_bpr_upload_keeps_model_dtype(self):
        model = build_model("mf", 12, 4, seed=0)
        model.item_embeddings = model.item_embeddings.astype(np.float32)
        client = BenignClient(0, np.array([0, 1, 2]), 12, 4, seed=0)
        client.user_embedding = client.user_embedding.astype(np.float32)
        cfg = TrainConfig(loss="bpr")
        update = client.participate(model, cfg, round_idx=0)
        assert update.item_grads.dtype == np.float32
        assert client.user_embedding.dtype == np.float32

    def test_loop_bce_upload_keeps_model_dtype(self):
        model = build_model("mf", 12, 4, seed=0)
        model.item_embeddings = model.item_embeddings.astype(np.float32)
        client = BenignClient(0, np.array([0, 1, 2]), 12, 4, seed=0)
        client.user_embedding = client.user_embedding.astype(np.float32)
        update = client.participate(model, TrainConfig(), round_idx=0)
        assert update.item_grads.dtype == np.float32

    @pytest.mark.parametrize("loss", ["bce", "bpr"])
    def test_batched_upload_keeps_model_dtype(self, tiny_mf_config, loss):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, loss=loss)
        )
        sim = FederatedSimulation(cfg, engine="batch")
        self._as_float32(sim)
        engine = sim._batch_engine
        batch = engine._benign_batch_step(np.arange(8, dtype=np.int64), 0)
        assert batch.item_grads.dtype == np.float32


class TestEngineStorePath:
    @pytest.mark.parametrize(
        "variant", ["attack_defense", "bpr", "client_lr_range", "ncf_attack"]
    )
    def test_store_engine_matches_object_fallback(
        self, tiny_mf_config, tiny_ncf_config, variant
    ):
        """Store gather/scatter vs object stacking: identical rounds.

        The object fallback is the pre-store batch engine; the store
        path must reproduce it bit for bit across the representative
        attack x defense x model x loss corners (the loop-vs-batch
        sweeps in test_batch_engine.py / test_batch_defended.py pin
        the store path to the reference loop for every combination).
        """
        from repro.config import AttackConfig, DefenseConfig

        if variant == "attack_defense":
            cfg = replace(
                tiny_mf_config,
                attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
                defense=DefenseConfig(name="regularization"),
            )
        elif variant == "bpr":
            cfg = replace(
                tiny_mf_config, train=replace(tiny_mf_config.train, loss="bpr")
            )
        elif variant == "client_lr_range":
            cfg = replace(
                tiny_mf_config,
                train=replace(tiny_mf_config.train, client_lr_range=(0.1, 2.0)),
            )
        else:
            cfg = replace(
                tiny_ncf_config,
                attack=AttackConfig(name="pieck_ipe", malicious_ratio=0.1),
            )
        store_sim = FederatedSimulation(cfg, engine="batch")
        fallback_sim = FederatedSimulation(cfg, engine="batch")
        fallback_sim._batch_engine.state = None
        store_result = store_sim.run(rounds=8)
        fallback_result = fallback_sim.run(rounds=8)
        assert fallback_sim._batch_engine.stacked_rounds == 8
        assert store_sim._batch_engine.stacked_rounds == 0
        assert store_result.exposure == fallback_result.exposure
        assert store_result.hit_ratio == fallback_result.hit_ratio
        assert np.array_equal(
            store_sim.model.item_embeddings, fallback_sim.model.item_embeddings
        )
        assert np.array_equal(
            store_sim.state.user_embeddings, fallback_sim.state.user_embeddings
        )

    def test_store_rounds_never_fall_back_to_stacking(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config, engine="batch")
        sim.run(rounds=4)
        assert sim._batch_engine.state is sim.state
        assert sim._batch_engine.stacked_rounds == 0

    def test_object_fallback_counts_stacked_rounds(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config, engine="batch")
        reference = FederatedSimulation(tiny_mf_config, engine="batch")
        fallback = BatchClientEngine(
            reference.model,
            reference.server,
            reference.benign_clients,
            reference.malicious_clients,
            reference.config.train,
            reference.config.seed,
        )
        for round_idx in range(3):
            sampled = sim.server.sample_users(
                sim.total_users, sim.config.train.users_per_round, round_idx
            )
            sim._batch_engine.run_round(round_idx, sampled)
            fallback.run_round(round_idx, sampled)
        assert fallback.stacked_rounds == 3
        assert sim._batch_engine.stacked_rounds == 0
        # Object stacking and store gather/scatter are the same round.
        assert np.array_equal(
            sim.model.item_embeddings, reference.model.item_embeddings
        )
        assert np.array_equal(
            sim.state.user_embeddings, reference.state.user_embeddings
        )
