"""Tests for the untargeted FedAttack baseline."""

import numpy as np
import pytest

from repro.attacks.baselines.fedattack import FedAttack
from repro.config import AttackConfig, TrainConfig, replace
from repro.federated.simulation import FederatedSimulation
from repro.models.mf import MFModel


@pytest.fixture()
def cfg():
    return AttackConfig(name="fedattack", malicious_ratio=0.1)


class TestFedAttack:
    def test_uploads_inverted_gradients(self, cfg):
        model = MFModel(30, 4, seed=0)
        attack = FedAttack(0, np.array([5]), cfg, 30, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        assert update is not None
        assert update.malicious
        # Batch covers the fake positives and their sampled negatives.
        assert set(attack.fake_positives.tolist()).issubset(
            set(update.item_ids.tolist())
        )

    def test_gradients_flip_supervision(self, cfg):
        model = MFModel(30, 4, seed=1)
        attack = FedAttack(0, np.array([5]), cfg, 30, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        # For its fake positives the attack trains towards label 0: the
        # gradient must *lower* their score for the attacker embedding.
        for item_id, grad in zip(update.item_ids, update.item_grads):
            if item_id in attack.fake_positives:
                moved = model.item_embeddings[item_id] - grad
                before = model.item_embeddings[item_id] @ attack.user_embedding
                after = moved @ attack.user_embedding
                assert after <= before + 1e-9

    def test_untargeted_attack_degrades_hr(self, tiny_mf_config):
        """The stealth contrast with targeted PIECK (Section II)."""
        clean = FederatedSimulation(tiny_mf_config).run(rounds=40)
        attacked_cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="fedattack", malicious_ratio=0.25),
        )
        attacked = FederatedSimulation(attacked_cfg).run(rounds=40)
        assert attacked.hit_ratio < clean.hit_ratio

    def test_profile_size_capped_by_catalogue(self, cfg):
        attack = FedAttack(
            0, np.array([1]), cfg, 8, embedding_dim=4, fake_profile_size=100
        )
        assert len(attack.fake_positives) == 8
