"""Model-agnosticism integration checks on DL-FRS (NCF).

The paper's central claim for PIECK — and the property our extensions
must preserve — is independence from the base model's interaction
function. These short end-to-end runs exercise the refined pseudo-user
source, the audit log and the coordinated defense on NCF.
"""

import numpy as np
import pytest

from repro.analysis.audit import poison_share_summary
from repro.experiments import attack_config, experiment
from repro.federated.simulation import FederatedSimulation


@pytest.fixture(scope="module")
def short_ncf_attack():
    """A short attacked NCF run shared by the assertions below."""
    config = experiment(
        "ml-100k", "ncf", attack="pieck_uea", seed=0, rounds=60
    )
    sim = FederatedSimulation(config, audit=True)
    result = sim.run()
    return sim, result


class TestNCFAttackIntegration:
    def test_attack_promotes_target(self, short_ncf_attack):
        _, result = short_ncf_attack
        # DL-FRS is the paper's most vulnerable setting (Table III: ER
        # reaches 100); even a short run must show strong promotion.
        assert result.exposure > 0.5

    def test_audit_log_sees_poison(self, short_ncf_attack):
        sim, _ = short_ncf_attack
        target = int(sim.targets[0])
        summary = poison_share_summary(sim.audit_log, target)
        assert summary.malicious_gradients > 0
        assert summary.mean_mass_share > 0.3

    def test_refined_source_runs_on_ncf(self):
        config = experiment(
            "ml-100k", "ncf",
            attack=attack_config("pieck_uea", uea_pseudo_source="refined"),
            seed=0, rounds=40,
        )
        result = FederatedSimulation(config).run()
        assert np.isfinite(result.exposure)
        assert result.exposure > 0.2

    def test_scale_clip_contains_ncf_attack(self):
        # The server-side scale clip is the recommended defense on
        # DL-FRS: it contains the attack at full recommendation
        # quality (the coordinated composition also contains ER but
        # over-constrains the tower on long horizons — EXPERIMENTS.md).
        config = experiment(
            "ml-100k", "ncf", attack="pieck_uea", defense="scale_clip",
            seed=0, rounds=100,
        )
        result = FederatedSimulation(config).run()
        assert result.exposure < 0.2
        assert result.hit_ratio > 0.3

    def test_coordinated_defense_contains_ncf_exposure(self):
        config = experiment(
            "ml-100k", "ncf", attack="pieck_uea", defense="coordinated",
            seed=0, rounds=100,
        )
        result = FederatedSimulation(config).run()
        assert result.exposure < 0.2
