"""Tests for result/model persistence."""

import os

import numpy as np
import pytest

from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel
from repro.persistence import load_model, load_result, save_model, save_result


def make_result():
    return SimulationResult(
        exposure=0.25,
        hit_ratio=0.5,
        targets=np.array([3, 7]),
        rounds_run=100,
        history=[EvalRecord(50, 0.1, 0.4), EvalRecord(100, 0.25, 0.5)],
        seconds_per_round=0.01,
    )


class TestResultRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run" / "result.json")
        original = make_result()
        save_result(original, path)
        loaded = load_result(path)
        assert loaded.exposure == original.exposure
        assert loaded.hit_ratio == original.hit_ratio
        np.testing.assert_array_equal(loaded.targets, original.targets)
        assert loaded.rounds_run == original.rounds_run
        assert len(loaded.history) == 2
        assert loaded.history[1].exposure == 0.25

    def test_item_history_not_persisted(self, tmp_path):
        path = str(tmp_path / "result.json")
        result = make_result()
        result.item_history = [np.zeros((2, 2))]
        save_result(result, path)
        assert load_result(path).item_history == []


class TestModelRoundtrip:
    def test_mf_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.npz")
        source = MFModel(8, 4, seed=1)
        target = MFModel(8, 4, seed=2)
        save_model(source, path)
        load_model(target, path)
        np.testing.assert_array_equal(target.item_embeddings, source.item_embeddings)

    def test_ncf_roundtrip_includes_params(self, tmp_path):
        path = str(tmp_path / "model.npz")
        source = NCFModel(8, 4, mlp_layers=(8,), seed=1)
        target = NCFModel(8, 4, mlp_layers=(8,), seed=2)
        save_model(source, path)
        load_model(target, path)
        for a, b in zip(source.interaction_params(), target.interaction_params()):
            np.testing.assert_array_equal(a, b)

    def test_extension_added_automatically(self, tmp_path):
        path = str(tmp_path / "model")
        source = MFModel(4, 3, seed=0)
        save_model(source, path)
        load_model(MFModel(4, 3, seed=5), path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(8, 4, seed=1), path)
        with pytest.raises(ValueError, match="does not match"):
            load_model(MFModel(9, 4, seed=1), path)

    def test_param_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(8, 4, seed=1), path)
        with pytest.raises(ValueError, match="interaction parameters"):
            load_model(NCFModel(8, 4, mlp_layers=(8,), seed=1), path)


class TestFaultStatsRoundtrip:
    def test_fault_stats_persisted(self, tmp_path):
        from repro.federated.faults import FaultStats

        path = str(tmp_path / "result.json")
        original = make_result()
        original = SimulationResult(
            exposure=original.exposure,
            hit_ratio=original.hit_ratio,
            targets=original.targets,
            rounds_run=original.rounds_run,
            history=original.history,
            seconds_per_round=original.seconds_per_round,
            fault_stats=FaultStats(
                dropped_uploads=5,
                deferred_uploads=3,
                stale_applied=2,
                stale_pending=1,
                corrupted_uploads=4,
                rejected_nonfinite=4,
                rejected_oversized=1,
                quorum_failed_rounds=1,
                quorum_dropped_uploads=2,
            ),
        )
        save_result(original, path)
        assert load_result(path).fault_stats == original.fault_stats

    def test_legacy_payload_defaults_to_zero_stats(self, tmp_path):
        import json

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        with open(path) as handle:
            payload = json.load(handle)
        # A genuine pre-fault_stats file also predates the digest.
        del payload["fault_stats"]
        del payload["sha256"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert not load_result(path).fault_stats.any_fault


class TestResultIntegrity:
    def test_saved_result_carries_verifying_digest(self, tmp_path):
        import json

        from repro.persistence import verify_json_digest

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        payload = json.load(open(path))
        assert verify_json_digest(payload)

    def test_bit_flipped_result_quarantined(self, tmp_path):
        import os

        from repro.persistence import IntegrityError, QUARANTINE_SUFFIX

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        blob = bytearray(open(path, "rb").read())
        # Flip a digit inside a float: JSON stays valid, digest doesn't.
        offset = blob.index(b"0.25") + 2
        blob[offset : offset + 1] = b"7"
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(IntegrityError):
            load_result(path)
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_torn_result_quarantined(self, tmp_path):
        import os

        from repro.persistence import IntegrityError, QUARANTINE_SUFFIX

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        with pytest.raises(IntegrityError):
            load_result(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_missing_result_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(str(tmp_path / "absent.json"))

    def test_digest_is_format_independent(self, tmp_path):
        # Reformatting the JSON (indentation, key order) must not break
        # verification: the digest covers the content, not the bytes.
        import json

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        payload = json.load(open(path))
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=None, sort_keys=False)
        assert load_result(path).exposure == 0.25


class TestBenchJsonIntegrity:
    def test_emit_bench_json_is_digest_stamped_and_atomic(
        self, tmp_path, monkeypatch
    ):
        import json
        import sys

        bench_dir = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks"
        )
        sys.path.insert(0, bench_dir)
        try:
            import _harness
        finally:
            sys.path.remove(bench_dir)
        monkeypatch.setattr(_harness, "RESULTS_DIR", str(tmp_path))
        from repro.persistence import verify_json_digest

        path = _harness.emit_bench_json("unit_test", {"metric": 1.5})
        payload = json.load(open(path))
        assert payload["bench"] == "unit_test"
        assert verify_json_digest(payload)
        # No temp litter next to the artifact.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "BENCH_unit_test.json"
        ]

    def test_fsck_verifies_bench_files(self, tmp_path, monkeypatch):
        import sys

        bench_dir = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks"
        )
        sys.path.insert(0, bench_dir)
        try:
            import _harness
        finally:
            sys.path.remove(bench_dir)
        monkeypatch.setattr(_harness, "RESULTS_DIR", str(tmp_path))
        from repro.persistence import fsck_paths

        path = _harness.emit_bench_json("unit_test_fsck", {"metric": 2.0})
        assert fsck_paths(str(tmp_path)).verified == 1
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert fsck_paths(str(tmp_path)).corrupt == 1


class TestAtomicWrites:
    def test_result_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["result.json"]

    def test_model_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(4, 3, seed=0), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_failed_result_save_keeps_previous(self, tmp_path, monkeypatch):
        import json as json_module

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)

        def explode(*args, **kwargs):
            raise RuntimeError("disk died")

        monkeypatch.setattr(json_module, "dump", explode)
        with pytest.raises(RuntimeError):
            save_result(make_result(), path)
        monkeypatch.undo()
        # The previous complete file survived the failed overwrite.
        assert load_result(path).exposure == 0.25
        assert sorted(p.name for p in tmp_path.iterdir()) == ["result.json"]
