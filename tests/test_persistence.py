"""Tests for result/model persistence."""

import numpy as np
import pytest

from repro.federated.simulation import EvalRecord, SimulationResult
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel
from repro.persistence import load_model, load_result, save_model, save_result


def make_result():
    return SimulationResult(
        exposure=0.25,
        hit_ratio=0.5,
        targets=np.array([3, 7]),
        rounds_run=100,
        history=[EvalRecord(50, 0.1, 0.4), EvalRecord(100, 0.25, 0.5)],
        seconds_per_round=0.01,
    )


class TestResultRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run" / "result.json")
        original = make_result()
        save_result(original, path)
        loaded = load_result(path)
        assert loaded.exposure == original.exposure
        assert loaded.hit_ratio == original.hit_ratio
        np.testing.assert_array_equal(loaded.targets, original.targets)
        assert loaded.rounds_run == original.rounds_run
        assert len(loaded.history) == 2
        assert loaded.history[1].exposure == 0.25

    def test_item_history_not_persisted(self, tmp_path):
        path = str(tmp_path / "result.json")
        result = make_result()
        result.item_history = [np.zeros((2, 2))]
        save_result(result, path)
        assert load_result(path).item_history == []


class TestModelRoundtrip:
    def test_mf_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.npz")
        source = MFModel(8, 4, seed=1)
        target = MFModel(8, 4, seed=2)
        save_model(source, path)
        load_model(target, path)
        np.testing.assert_array_equal(target.item_embeddings, source.item_embeddings)

    def test_ncf_roundtrip_includes_params(self, tmp_path):
        path = str(tmp_path / "model.npz")
        source = NCFModel(8, 4, mlp_layers=(8,), seed=1)
        target = NCFModel(8, 4, mlp_layers=(8,), seed=2)
        save_model(source, path)
        load_model(target, path)
        for a, b in zip(source.interaction_params(), target.interaction_params()):
            np.testing.assert_array_equal(a, b)

    def test_extension_added_automatically(self, tmp_path):
        path = str(tmp_path / "model")
        source = MFModel(4, 3, seed=0)
        save_model(source, path)
        load_model(MFModel(4, 3, seed=5), path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(8, 4, seed=1), path)
        with pytest.raises(ValueError, match="does not match"):
            load_model(MFModel(9, 4, seed=1), path)

    def test_param_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(8, 4, seed=1), path)
        with pytest.raises(ValueError, match="interaction parameters"):
            load_model(NCFModel(8, 4, mlp_layers=(8,), seed=1), path)


class TestFaultStatsRoundtrip:
    def test_fault_stats_persisted(self, tmp_path):
        from repro.federated.faults import FaultStats

        path = str(tmp_path / "result.json")
        original = make_result()
        original = SimulationResult(
            exposure=original.exposure,
            hit_ratio=original.hit_ratio,
            targets=original.targets,
            rounds_run=original.rounds_run,
            history=original.history,
            seconds_per_round=original.seconds_per_round,
            fault_stats=FaultStats(
                dropped_uploads=5,
                deferred_uploads=3,
                stale_applied=2,
                stale_pending=1,
                corrupted_uploads=4,
                rejected_nonfinite=4,
                rejected_oversized=1,
                quorum_failed_rounds=1,
                quorum_dropped_uploads=2,
            ),
        )
        save_result(original, path)
        assert load_result(path).fault_stats == original.fault_stats

    def test_legacy_payload_defaults_to_zero_stats(self, tmp_path):
        import json

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        with open(path) as handle:
            payload = json.load(handle)
        del payload["fault_stats"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert not load_result(path).fault_stats.any_fault


class TestAtomicWrites:
    def test_result_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "result.json")
        save_result(make_result(), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["result.json"]

    def test_model_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(MFModel(4, 3, seed=0), path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_failed_result_save_keeps_previous(self, tmp_path, monkeypatch):
        import json as json_module

        path = str(tmp_path / "result.json")
        save_result(make_result(), path)

        def explode(*args, **kwargs):
            raise RuntimeError("disk died")

        monkeypatch.setattr(json_module, "dump", explode)
        with pytest.raises(RuntimeError):
            save_result(make_result(), path)
        monkeypatch.undo()
        # The previous complete file survived the failed overwrite.
        assert load_result(path).exposure == 0.25
        assert sorted(p.name for p in tmp_path.iterdir()) == ["result.json"]
