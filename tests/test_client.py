"""Tests for the benign federated client."""

import numpy as np
import pytest

from repro.config import TrainConfig
from repro.federated.client import BenignClient
from repro.models.mf import MFModel


def make_client(regularizer=None, seed=0):
    return BenignClient(
        user_id=3,
        positive_items=np.array([1, 4, 7]),
        num_items=20,
        embedding_dim=6,
        seed=seed,
        regularizer=regularizer,
    )


class TestBCEStep:
    def test_update_aligned_and_scoped(self):
        client = make_client()
        model = MFModel(20, 6, seed=1)
        update = client.participate(model, TrainConfig(negative_ratio=1), 0)
        assert len(update.item_ids) == len(update.item_grads) == 6
        assert set(np.array([1, 4, 7])).issubset(set(update.item_ids.tolist()))
        assert not update.malicious
        assert update.param_grads == []

    def test_user_embedding_updated_locally(self):
        client = make_client()
        model = MFModel(20, 6, seed=1)
        before = client.user_embedding.copy()
        client.participate(model, TrainConfig(lr=0.5), 0)
        assert not np.allclose(before, client.user_embedding)

    def test_gradients_point_downhill(self):
        # Positive items should receive gradients that *raise* their
        # score after the server's v <- v - lr * g step.
        client = make_client()
        model = MFModel(20, 6, seed=2)
        update = client.participate(model, TrainConfig(), 0)
        user = client.user_embedding
        for item_id, grad in zip(update.item_ids, update.item_grads):
            if item_id in (1, 4, 7):
                # Moving against the gradient increases the logit.
                assert np.dot(-grad, user) >= -1e-9 or np.allclose(grad, 0)

    def test_fresh_negatives_each_round(self):
        client = make_client()
        model = MFModel(20, 6, seed=1)
        u0 = client.participate(model, TrainConfig(), 0)
        u1 = client.participate(model, TrainConfig(), 1)
        assert not np.array_equal(u0.item_ids, u1.item_ids)

    def test_deterministic_given_round(self):
        a = make_client()
        b = make_client()
        model = MFModel(20, 6, seed=1)
        ua = a.participate(model, TrainConfig(), 5)
        ub = b.participate(model, TrainConfig(), 5)
        np.testing.assert_array_equal(ua.item_ids, ub.item_ids)
        np.testing.assert_allclose(ua.item_grads, ub.item_grads)


class TestBPRStep:
    def test_bpr_update_valid(self):
        client = make_client()
        model = MFModel(20, 6, seed=1)
        update = client.participate(model, TrainConfig(loss="bpr"), 0)
        assert len(np.unique(update.item_ids)) == len(update.item_ids)
        assert len(update.item_ids) >= 3

    def test_bpr_changes_user_embedding(self):
        client = make_client()
        model = MFModel(20, 6, seed=1)
        before = client.user_embedding.copy()
        client.participate(model, TrainConfig(loss="bpr", lr=0.5), 0)
        assert not np.allclose(before, client.user_embedding)


class TestClientLr:
    def test_dynamic_rate_in_range(self):
        client = make_client()
        cfg = TrainConfig(client_lr_range=(1e-2, 1.0))
        rate = client._client_lr(cfg)
        assert 1e-2 <= rate <= 1.0

    def test_dynamic_rate_fixed_per_client(self):
        client = make_client()
        cfg = TrainConfig(client_lr_range=(1e-2, 1.0))
        assert client._client_lr(cfg) == client._client_lr(cfg)

    def test_dynamic_rates_differ_across_clients(self):
        cfg = TrainConfig(client_lr_range=(1e-3, 1.0))
        rates = {
            BenignClient(i, np.array([0]), 5, 4, seed=0)._client_lr(cfg)
            for i in range(8)
        }
        assert len(rates) > 1

    def test_invalid_range_rejected(self):
        client = make_client()
        with pytest.raises(ValueError):
            client._client_lr(TrainConfig(client_lr_range=(1.0, 0.5)))


class _SpyRegularizer:
    def __init__(self):
        self.observed = 0

    def observe(self, item_matrix):
        self.observed += 1

    def item_grad_terms(self, item_ids, item_matrix):
        return np.full((len(item_ids), item_matrix.shape[1]), 0.25)

    def user_grad_term(self, user_emb, item_matrix):
        return np.full_like(user_emb, 0.5)


class TestRegularizerHook:
    def test_hooks_invoked_and_grads_added(self):
        spy = _SpyRegularizer()
        with_reg = make_client(regularizer=spy)
        without = make_client()
        model = MFModel(20, 6, seed=1)
        u_reg = with_reg.participate(model, TrainConfig(lr=0.0), 0)
        u_plain = without.participate(model, TrainConfig(lr=0.0), 0)
        assert spy.observed == 1
        np.testing.assert_allclose(u_reg.item_grads - u_plain.item_grads, 0.25)

    def test_user_grad_term_applied_locally(self):
        spy = _SpyRegularizer()
        with_reg = make_client(regularizer=spy)
        without = make_client()
        model = MFModel(20, 6, seed=1)
        with_reg.participate(model, TrainConfig(lr=1.0), 0)
        without.participate(model, TrainConfig(lr=1.0), 0)
        diff = without.user_embedding - with_reg.user_embedding
        np.testing.assert_allclose(diff, 0.5, atol=1e-12)
