"""End-to-end tests for the federated simulation."""

import numpy as np
import pytest

from repro.config import AttackConfig, DefenseConfig, replace
from repro.federated.simulation import FederatedSimulation


class TestCleanTraining:
    def test_metrics_in_range(self, tiny_mf_config):
        result = FederatedSimulation(tiny_mf_config).run()
        assert 0.0 <= result.exposure <= 1.0
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_training_improves_hit_ratio(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        _, hr_before = sim.evaluate()
        result = sim.run()
        assert result.hit_ratio > hr_before

    def test_deterministic_given_seed(self, tiny_mf_config):
        a = FederatedSimulation(tiny_mf_config).run()
        b = FederatedSimulation(tiny_mf_config).run()
        assert a.exposure == b.exposure
        assert a.hit_ratio == b.hit_ratio

    def test_no_malicious_without_attack(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        assert sim.malicious_clients == []
        assert sim.total_users == sim.dataset.num_users

    def test_targets_selected_even_without_attack(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        assert len(sim.targets) == 1

    def test_history_recorded(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, eval_every=10)
        )
        result = FederatedSimulation(cfg).run()
        rounds = [rec.round_idx for rec in result.history]
        assert rounds == [10, 20, 25]

    def test_item_history_recording(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        result = sim.run(rounds=5, record_item_history=True)
        assert len(result.item_history) == 6  # snapshots 0..4 + final
        assert not np.array_equal(result.item_history[0], result.item_history[-1])

    def test_ncf_end_to_end(self, tiny_ncf_config):
        result = FederatedSimulation(tiny_ncf_config).run(rounds=10)
        assert 0.0 <= result.hit_ratio <= 1.0


class TestAttackedTraining:
    def test_malicious_population_size(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
        )
        sim = FederatedSimulation(cfg)
        ratio = len(sim.malicious_clients) / sim.total_users
        assert ratio == pytest.approx(0.1, abs=0.03)

    def test_explicit_target_items_respected(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", target_items=(3, 7)),
        )
        sim = FederatedSimulation(cfg)
        np.testing.assert_array_equal(sim.targets, [3, 7])

    def test_empty_target_items_rejected(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config, attack=AttackConfig(name="pieck_uea", target_items=())
        )
        with pytest.raises(ValueError, match="target_items"):
            FederatedSimulation(cfg)

    def test_attack_raises_exposure(self, tiny_mf_config):
        clean = FederatedSimulation(tiny_mf_config).run(rounds=40)
        attacked_cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
        )
        attacked = FederatedSimulation(attacked_cfg).run(rounds=40)
        assert attacked.exposure > clean.exposure

    def test_defense_reduces_exposure(self, tiny_mf_config):
        attacked_cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
        )
        defended_cfg = replace(
            attacked_cfg, defense=DefenseConfig(name="regularization")
        )
        attacked = FederatedSimulation(attacked_cfg).run(rounds=40)
        defended = FederatedSimulation(defended_cfg).run(rounds=40)
        assert defended.exposure <= attacked.exposure

    def test_server_defense_wiring(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
            defense=DefenseConfig(name="median"),
        )
        result = FederatedSimulation(cfg).run(rounds=10)
        assert 0.0 <= result.hit_ratio <= 1.0


class TestEvaluation:
    def test_evaluate_with_custom_k(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        sim.run(rounds=10)
        er5, hr5 = sim.evaluate(k=5)
        er20, hr20 = sim.evaluate(k=20)
        assert hr20 >= hr5  # larger cutoff can only add hits
        assert er20 >= er5

    def test_user_embedding_matrix_shape(self, tiny_mf_config):
        sim = FederatedSimulation(tiny_mf_config)
        matrix = sim.user_embedding_matrix()
        assert matrix.shape == (
            sim.dataset.num_users,
            tiny_mf_config.model.embedding_dim,
        )
