"""Tests for the analysis modules behind the paper's figures/theory."""

import numpy as np
import pytest

from repro.analysis.cost import measure_round_cost
from repro.analysis.delta_norm import mining_window_study, run_delta_norm_study
from repro.analysis.poison_proportion import (
    expected_poison_proportion,
    item_inclusion_probability,
    poison_proportion_profile,
)
from repro.analysis.popularity import longtail_summary, popularity_curve
from repro.config import AttackConfig, replace
from repro.datasets.base import InteractionDataset


class TestPopularity:
    def test_curve_descending(self, tiny_dataset):
        curve = popularity_curve(tiny_dataset)
        assert (np.diff(curve) <= 0).all()
        assert curve.sum() == tiny_dataset.num_train_interactions

    def test_summary_bounds(self, tiny_dataset):
        summary = longtail_summary(tiny_dataset)
        assert 0.0 <= summary.head_interaction_share <= 1.0
        assert 0.0 <= summary.gini <= 1.0
        assert 0.0 < summary.items_for_half_interactions <= 1.0

    def test_head_over_represented(self, tiny_dataset):
        summary = longtail_summary(tiny_dataset)
        # The head (15% of items) holds more than 15% of interactions.
        assert summary.head_interaction_share > summary.head_fraction

    def test_invalid_head_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            longtail_summary(tiny_dataset, head_fraction=0.0)

    def test_uniform_distribution_low_gini(self):
        train_pos = [np.array([i % 8]) for i in range(8)]
        data = InteractionDataset("u", 8, 8, train_pos, np.full(8, -1))
        assert longtail_summary(data).gini == pytest.approx(0.0, abs=1e-9)


class TestPoisonProportion:
    def test_eq11_limits(self):
        # p_j = 1 -> poison share equals the malicious ratio (minimum).
        assert expected_poison_proportion(1.0, 0.05) == pytest.approx(0.05, abs=0.01)
        # p_j -> 0 -> poison share -> 1 regardless of the ratio.
        assert expected_poison_proportion(1e-6, 0.05) > 0.99

    def test_monotone_decreasing_in_pj(self):
        values = [expected_poison_proportion(p, 0.05) for p in (0.01, 0.1, 0.5, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_zero_malicious(self):
        assert expected_poison_proportion(0.5, 0.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_poison_proportion(1.5, 0.05)
        with pytest.raises(ValueError):
            expected_poison_proportion(0.5, 1.0)

    def test_inclusion_probability_interacted_item(self, tiny_dataset):
        popular = int(tiny_dataset.popularity_ranking()[0])
        cold = int(tiny_dataset.popularity_ranking()[-1])
        p_popular = item_inclusion_probability(tiny_dataset, popular)
        p_cold = item_inclusion_probability(tiny_dataset, cold)
        assert p_popular > p_cold
        assert 0.0 <= p_cold <= p_popular <= 1.0

    def test_cold_items_dominated_by_poison(self, tiny_dataset):
        """The paper's central defense-analysis claim (Section V-A)."""
        cold = tiny_dataset.coldest_items(1)
        profile = poison_proportion_profile(tiny_dataset, 0.05, items=cold)
        # Well above the 5% malicious ratio (the tiny fixture is dense,
        # so p_j is larger than on real sparse data; on ML-100K scale
        # the share approaches 1).
        assert profile[0] > 2 * 0.05

    def test_out_of_range_item(self, tiny_dataset):
        with pytest.raises(ValueError):
            item_inclusion_probability(tiny_dataset, tiny_dataset.num_items)


class TestDeltaNormStudy:
    def test_study_shapes_and_claim(self, tiny_mf_config):
        study = run_delta_norm_study(
            tiny_mf_config, probe_rounds=(2, 6, 12), top_k=10
        )
        assert study.rounds == [2, 6, 12]
        assert all(len(r) == 10 for r in study.top_popularity_ranks)
        assert all(0.0 <= s <= 1.0 for s in study.popular_share)
        # Properties 1-2: popular items dominate the top Δ-Norm ranks
        # far beyond their 15% share of the catalogue.
        assert study.share_at(12) > 0.3

    def test_rejects_attacked_config(self, tiny_mf_config):
        cfg = replace(tiny_mf_config, attack=AttackConfig(name="pieck_uea"))
        with pytest.raises(ValueError, match="clean"):
            run_delta_norm_study(cfg)


class TestMiningWindowStudy:
    def test_shares_per_window(self, tiny_mf_config):
        shares = mining_window_study(
            tiny_mf_config, windows=(1, 3), num_popular=5
        )
        assert set(shares) == {1, 3}
        assert all(0.0 <= s <= 1.0 for s in shares.values())

    def test_rejects_attacked_config(self, tiny_mf_config):
        cfg = replace(tiny_mf_config, attack=AttackConfig(name="pieck_ipe"))
        with pytest.raises(ValueError, match="clean"):
            mining_window_study(cfg)

    def test_rejects_empty_windows(self, tiny_mf_config):
        with pytest.raises(ValueError, match="window"):
            mining_window_study(tiny_mf_config, windows=())


class TestCost:
    def test_measures_positive_time(self, tiny_mf_config):
        cost = measure_round_cost(tiny_mf_config, rounds=3, warmup_rounds=1)
        assert cost.seconds_per_round > 0.0
        assert cost.rounds_measured == 3
        assert cost.label == "clean"

    def test_label_from_attack(self, tiny_mf_config):
        cfg = replace(tiny_mf_config, attack=AttackConfig(name="pieck_ipe"))
        cost = measure_round_cost(cfg, rounds=2, warmup_rounds=1)
        assert cost.label == "pieck_ipe"
