"""Tests for multi-seed stability sweeps (repro.experiments.stability)."""

import numpy as np
import pytest

from repro.experiments.runner import Cell
from repro.experiments.stability import SeedSweep, sweep_seeds


class TestSeedSweep:
    def _sweep(self):
        return SeedSweep(
            seeds=(0, 1, 2),
            cells=(Cell(er=80.0, hr=50.0), Cell(er=90.0, hr=48.0), Cell(er=85.0, hr=49.0)),
        )

    def test_summaries(self):
        sweep = self._sweep()
        assert sweep.er_mean == pytest.approx(85.0)
        assert sweep.hr_mean == pytest.approx(49.0)
        assert sweep.er_min == 80.0
        assert sweep.er_max == 90.0
        assert sweep.er_std == pytest.approx(np.std([80.0, 90.0, 85.0]))

    def test_str_contains_spread(self):
        text = str(self._sweep())
        assert "85.00" in text
        assert "[80.00, 90.00]" in text

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            SeedSweep(seeds=(0, 1), cells=(Cell(er=0, hr=0),))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SeedSweep(seeds=(), cells=())


class TestSweepSeeds:
    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError):
            sweep_seeds("ml-100k", "mf", seeds=())

    def test_each_seed_produces_a_cell(self):
        sweep = sweep_seeds(
            "ml-100k", "mf", seeds=(0, 1), rounds=5
        )
        assert sweep.seeds == (0, 1)
        assert len(sweep.cells) == 2
        assert all(0.0 <= c.hr <= 100.0 for c in sweep.cells)

    def test_seeds_actually_vary_the_run(self):
        sweep = sweep_seeds("ml-100k", "mf", seeds=(0, 1), rounds=10)
        # Different seeds regenerate the dataset and initialisation;
        # identical HR to two decimals across seeds would indicate the
        # seed is not being threaded through.
        assert sweep.cells[0] != sweep.cells[1]

    def test_same_seed_is_deterministic(self):
        first = sweep_seeds("ml-100k", "mf", seeds=(3,), rounds=5)
        second = sweep_seeds("ml-100k", "mf", seeds=(3,), rounds=5)
        assert first.cells == second.cells
