"""Tests for the terminal plotting helpers (repro.experiments.plotting)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.plotting import bar_chart, line_plot, scatter_plot


class TestLinePlot:
    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_rejects_tiny_plot_area(self):
        with pytest.raises(ValueError):
            line_plot({"a": [(0, 0), (1, 1)]}, width=4)

    def test_renders_title_and_labels(self):
        out = line_plot(
            {"er": [(0, 0.0), (10, 1.0)]},
            title="ER trend", x_label="round", y_label="ER",
        )
        assert "ER trend" in out
        assert "round" in out
        assert "ER" in out

    def test_monotone_series_is_monotone_on_grid(self):
        out = line_plot({"a": [(0, 0.0), (1, 1.0), (2, 2.0)]}, width=20, height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
        cols = {}
        for row_idx, row in enumerate(rows):
            for col_idx, ch in enumerate(row):
                if ch == "*":
                    cols.setdefault(col_idx, row_idx)
        ordered = [cols[c] for c in sorted(cols)]
        # Higher y = smaller row index; x increasing must not descend.
        assert ordered == sorted(ordered, reverse=True)

    def test_legend_only_for_multi_series(self):
        single = line_plot({"only": [(0, 0), (1, 1)]})
        multi = line_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "only" not in single
        assert "a" in multi and "b" in multi
        assert "o b" in multi  # second glyph assigned in order

    def test_constant_series_does_not_crash(self):
        out = line_plot({"flat": [(0, 5.0), (10, 5.0)]})
        assert "*" in out

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_finite_series_renders(self, points):
        out = line_plot({"s": points}, width=30, height=8)
        body_rows = [ln for ln in out.splitlines() if "|" in ln]
        assert len(body_rows) == 8
        assert all(len(row.split("|", 1)[1]) <= 30 for row in body_rows)
        assert "*" in out


class TestScatterPlot:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            scatter_plot([])

    def test_rejects_multichar_marker(self):
        with pytest.raises(ValueError):
            scatter_plot([(0, 0)], marker="**")

    def test_corner_points_land_in_corners(self):
        out = scatter_plot([(0, 0), (1, 1)], width=10, height=5)
        rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
        assert rows[0][9] == "*"   # (1, 1): top-right
        assert rows[4][0] == "*"   # (0, 0): bottom-left

    def test_axis_limits_printed(self):
        out = scatter_plot([(2.0, 10.0), (8.0, 50.0)])
        assert "2" in out and "8" in out
        assert "10" in out and "50" in out


class TestBarChart:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_longest_bar_is_max_value(self):
        out = bar_chart({"small": 1.0, "big": 4.0}, width=20)
        lines = {ln.split("|")[0].strip(): ln for ln in out.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")
        assert "4" in lines["big"]

    def test_zero_values_render(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert out.count("#") == 2  # one minimal tick per bar

    def test_unit_suffix(self):
        out = bar_chart({"cost": 1.5}, unit=" s")
        assert "1.5 s" in out
