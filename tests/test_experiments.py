"""Tests for the experiment harness: presets, runner and reporting."""

import pytest

from repro.config import AttackConfig, DefenseConfig
from repro.experiments.presets import (
    EXPERIMENT_SCALES,
    attack_config,
    dataset_config,
    defense_config,
    experiment,
    model_config,
    train_config,
)
from repro.experiments.reporting import TableResult, format_table
from repro.experiments.runner import Cell, run_cell


class TestPresets:
    def test_dataset_scale_defaults(self):
        assert dataset_config("ml-100k").scale == EXPERIMENT_SCALES["ml-100k"]
        assert dataset_config("ml-1m").scale == EXPERIMENT_SCALES["ml-1m"]

    def test_train_presets_per_model(self):
        assert train_config("mf").lr == 1.0
        assert train_config("ncf").lr == 0.05
        assert train_config("mf").rounds == 120

    def test_unknown_model_kind(self):
        with pytest.raises(ValueError):
            train_config("gcn")

    def test_defense_gamma_preset_per_model(self):
        mf = defense_config("regularization", "mf")
        ncf = defense_config("regularization", "ncf")
        assert mf.gamma > 0 and ncf.gamma > 0

    def test_defense_gamma_override_wins(self):
        cfg = defense_config("regularization", "ncf", gamma=3.0)
        assert cfg.gamma == 3.0

    def test_experiment_accepts_names_and_objects(self):
        by_name = experiment("ml-100k", "mf", attack="pieck_uea")
        assert by_name.attack.name == "pieck_uea"
        custom = AttackConfig(name="pieck_ipe", num_popular=25)
        by_object = experiment("ml-100k", "mf", attack=custom)
        assert by_object.attack.num_popular == 25

    def test_experiment_none_attack(self):
        cfg = experiment("ml-100k", "mf", attack="none")
        assert cfg.attack is None

    def test_experiment_defense_object(self):
        cfg = experiment(
            "ml-100k", "mf", defense=DefenseConfig(name="median")
        )
        assert cfg.defense.name == "median"

    def test_attack_config_default_ratio(self):
        assert attack_config("pieck_uea").malicious_ratio == 0.05

    def test_model_config(self):
        assert model_config("ncf").kind == "ncf"


class TestRunner:
    def test_run_cell_percent_scale(self, tiny_mf_config):
        cell = run_cell(tiny_mf_config)
        assert 0.0 <= cell.er <= 100.0
        assert 0.0 <= cell.hr <= 100.0

    def test_run_cell_with_shared_dataset(self, tiny_mf_config, tiny_dataset):
        cell = run_cell(tiny_mf_config, dataset=tiny_dataset)
        assert isinstance(cell, Cell)

    def test_run_cell_custom_k(self, tiny_mf_config):
        cell5 = run_cell(tiny_mf_config, k=5)
        cell20 = run_cell(tiny_mf_config, k=20)
        assert cell20.hr >= cell5.hr

    def test_cell_format(self):
        assert str(Cell(er=12.5, hr=50.0)) == " 12.50 / 50.00"


class TestReporting:
    def test_format_alignment(self):
        table = TableResult("Demo", ["A", "Metric"])
        table.add_row("row-one", 1.5)
        table.add_row("r2", "long-value")
        text = str(table)
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        # All body lines equally wide.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_row_width_validation(self):
        table = TableResult("T", ["A", "B"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row("only-one")

    def test_format_table_function(self):
        text = format_table("T", ["h"], [["x"]])
        assert "T" in text and "x" in text
