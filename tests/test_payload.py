"""Tests for the client gradient payload."""

import numpy as np
import pytest

from repro.federated.payload import ClientUpdate


class TestValidation:
    def test_aligned_update_accepted(self):
        update = ClientUpdate(0, np.array([1, 2]), np.zeros((2, 4)))
        assert len(update.item_ids) == 2

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="align"):
            ClientUpdate(0, np.array([1, 2, 3]), np.zeros((2, 4)))

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClientUpdate(0, np.array([1, 1]), np.zeros((2, 4)))

    def test_one_dim_grads_rejected(self):
        with pytest.raises(ValueError):
            ClientUpdate(0, np.array([1]), np.zeros(4))


class TestNorms:
    def test_total_norm_items_only(self):
        grads = np.array([[3.0, 0.0], [0.0, 4.0]])
        update = ClientUpdate(0, np.array([0, 1]), grads)
        assert update.total_norm == pytest.approx(5.0)

    def test_total_norm_includes_params(self):
        update = ClientUpdate(
            0, np.array([0]), np.zeros((1, 2)), param_grads=[np.array([3.0, 4.0])]
        )
        assert update.total_norm == pytest.approx(5.0)

    def test_clipped_reduces_norm(self):
        grads = np.full((1, 4), 10.0)
        update = ClientUpdate(0, np.array([0]), grads)
        clipped = update.clipped(1.0)
        assert clipped.total_norm == pytest.approx(1.0)
        # Direction preserved.
        ratio = clipped.item_grads / update.item_grads
        assert np.allclose(ratio, ratio[0, 0])

    def test_clipped_noop_when_below_bound(self):
        update = ClientUpdate(0, np.array([0]), np.ones((1, 2)))
        assert update.clipped(100.0) is update

    def test_clipped_noop_for_non_positive_bound(self):
        update = ClientUpdate(0, np.array([0]), np.ones((1, 2)) * 50)
        assert update.clipped(0.0) is update

    def test_clipped_scales_params_too(self):
        update = ClientUpdate(
            0, np.array([0]), np.zeros((1, 2)), param_grads=[np.array([6.0, 8.0])]
        )
        clipped = update.clipped(5.0)
        np.testing.assert_allclose(clipped.param_grads[0], [3.0, 4.0])

    def test_malicious_flag_preserved_by_clipping(self):
        update = ClientUpdate(0, np.array([0]), np.ones((1, 2)) * 9, malicious=True)
        assert update.clipped(0.1).malicious
