"""Gradient-checked tests for the NumPy MLP substrate."""

import numpy as np
import pytest

from repro.models.mlp import Linear, MLPTower
from repro.rng import make_rng
from tests.conftest import numeric_gradient


class TestLinear:
    def test_forward_affine(self):
        rng = make_rng(0)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_backward_shapes(self):
        rng = make_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        dz = rng.normal(size=(5, 2))
        dx, dw, db = layer.backward(x, dz)
        assert dx.shape == (5, 3)
        assert dw.shape == (3, 2)
        assert db.shape == (2,)

    def test_backward_matches_numeric(self):
        rng = make_rng(2)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        dz = rng.normal(size=(4, 2))

        def loss_of_weight(w):
            return float(np.sum((x @ w + layer.bias) * dz))

        _, dw, db = layer.backward(x, dz)
        numeric_w = numeric_gradient(loss_of_weight, layer.weight.copy())
        np.testing.assert_allclose(dw, numeric_w, atol=1e-6)
        np.testing.assert_allclose(db, dz.sum(axis=0), atol=1e-12)


class TestMLPTower:
    def make_tower(self, seed=3):
        return MLPTower(6, (8, 4), make_rng(seed))

    def test_forward_shapes(self):
        tower = self.make_tower()
        x = make_rng(4).normal(size=(7, 6))
        logits, cache = tower.forward(x)
        assert logits.shape == (7,)
        assert len(cache) == 3  # input + two hidden activations

    def test_param_list_order_and_liveness(self):
        tower = self.make_tower()
        params = tower.param_list()
        assert len(params) == 5  # W1, b1, W2, b2, h
        params[0][0, 0] += 1.0
        assert tower.layers[0].weight[0, 0] == params[0][0, 0]  # live view

    def test_set_params_roundtrip(self):
        tower = self.make_tower()
        snapshot = [p.copy() for p in tower.param_list()]
        for p in tower.param_list():
            p += 1.0
        tower.set_params(snapshot)
        for current, saved in zip(tower.param_list(), snapshot):
            np.testing.assert_array_equal(current, saved)

    def test_set_params_shape_mismatch(self):
        tower = self.make_tower()
        bad = [np.zeros((1, 1))] * 5
        with pytest.raises(ValueError, match="shape mismatch"):
            tower.set_params(bad)

    def test_set_params_count_mismatch(self):
        tower = self.make_tower()
        with pytest.raises(ValueError, match="parameter arrays"):
            tower.set_params([np.zeros(2)])

    def test_input_gradient_numeric(self):
        tower = self.make_tower(seed=5)
        x = make_rng(6).normal(size=(3, 6))
        dlogits = make_rng(7).normal(size=3)

        def loss_of_input(xin):
            logits, _ = tower.forward(xin)
            return float(logits @ dlogits)

        _, cache = tower.forward(x)
        dx, _ = tower.backward(cache, dlogits)
        numeric = numeric_gradient(loss_of_input, x.copy())
        np.testing.assert_allclose(dx, numeric, atol=1e-5)

    def test_param_gradients_numeric(self):
        tower = self.make_tower(seed=8)
        x = make_rng(9).normal(size=(4, 6))
        dlogits = make_rng(10).normal(size=4)
        logits, cache = tower.forward(x)
        _, param_grads = tower.backward(cache, dlogits)

        params = tower.param_list()
        for index in range(len(params)):
            def loss_of_param(p, idx=index):
                original = params[idx].copy()
                params[idx][...] = p
                out, _ = tower.forward(x)
                value = float(out @ dlogits)
                params[idx][...] = original
                return value

            numeric = numeric_gradient(loss_of_param, params[index].copy())
            np.testing.assert_allclose(
                param_grads[index], numeric, atol=1e-5,
                err_msg=f"parameter {index} gradient mismatch",
            )

    def test_zero_like_params(self):
        tower = self.make_tower()
        zeros = tower.zero_like_params()
        assert all((z == 0).all() for z in zeros)
        assert [z.shape for z in zeros] == [p.shape for p in tower.param_list()]

    def test_relu_kills_negative_paths(self):
        tower = MLPTower(2, (2,), make_rng(11))
        tower.layers[0].weight[...] = np.eye(2)
        tower.layers[0].bias[...] = np.array([-100.0, 0.0])
        tower.projection[...] = np.ones(2)
        logits, _ = tower.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(logits, [2.0])  # first unit dead
