"""Tests for PIECK-UEA pseudo-user refinement (repro.attacks.refinement)."""

import numpy as np
import pytest

from repro.attacks.pieck_uea import PieckUEA
from repro.attacks.refinement import PseudoUserRefiner
from repro.config import AttackConfig, TrainConfig
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel


def _trained_mf(num_items=40, dim=8, seed=0):
    """An MF model whose item space has a planted 'user-liked' direction."""
    model = MFModel(num_items, dim, init_scale=0.1, seed=seed)
    rng = np.random.default_rng(seed)
    direction = rng.normal(0, 1, dim)
    direction /= np.linalg.norm(direction)
    # Items 0..9 are 'popular': aligned with the planted user direction.
    model.item_embeddings[:10] = direction * 2.0 + rng.normal(0, 0.05, (10, dim))
    # Remaining items point away.
    model.item_embeddings[10:] = -direction * 1.0 + rng.normal(0, 0.3, (30, dim))
    return model, direction


class TestPseudoUserRefiner:
    def test_rejects_empty_popular_set(self):
        with pytest.raises(ValueError):
            PseudoUserRefiner(10, 4, np.array([], dtype=np.int64))

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            PseudoUserRefiner(10, 4, np.arange(3), count=0)

    def test_vectors_shape(self):
        refiner = PseudoUserRefiner(40, 8, np.arange(10), count=5, seed=1)
        assert refiner.vectors.shape == (5, 8)

    def test_refine_aligns_with_popular_direction(self):
        model, direction = _trained_mf()
        refiner = PseudoUserRefiner(
            40, 8, np.arange(10), count=4, steps=80, lr=0.5, seed=2
        )
        vecs = refiner.refine(model)
        cosines = vecs @ direction / np.linalg.norm(vecs, axis=1)
        # Every refined pseudo-user must point towards the direction the
        # popular items (and hence the users who like them) occupy.
        assert (cosines > 0.8).all()

    def test_refine_scores_populars_above_others(self):
        model, _ = _trained_mf()
        refiner = PseudoUserRefiner(40, 8, np.arange(10), steps=80, seed=3)
        vecs = refiner.refine(model)
        pop_scores = vecs @ model.item_embeddings[:10].T
        other_scores = vecs @ model.item_embeddings[10:].T
        assert pop_scores.mean() > other_scores.mean()

    def test_refine_is_warm_started(self):
        model, _ = _trained_mf()
        refiner = PseudoUserRefiner(40, 8, np.arange(10), steps=10, seed=4)
        first = refiner.refine(model)
        second = refiner.refine(model)
        # Further steps continue from the previous state rather than
        # restarting from the random initialisation.
        assert not np.allclose(first, refiner.vectors)
        assert np.allclose(second, refiner.vectors)

    def test_refine_works_on_ncf(self):
        model = NCFModel(40, 8, mlp_layers=(16, 8), init_scale=0.1, seed=0)
        refiner = PseudoUserRefiner(40, 8, np.arange(10), steps=20, seed=5)
        before = refiner.vectors
        vecs = refiner.refine(model)
        assert vecs.shape == before.shape
        assert not np.allclose(vecs, before)
        assert np.isfinite(vecs).all()

    def test_degenerate_all_popular_catalogue(self):
        model, _ = _trained_mf()
        refiner = PseudoUserRefiner(40, 8, np.arange(40), steps=5, seed=6)
        vecs = refiner.refine(model)
        assert np.isfinite(vecs).all()


class TestPseudoUserSource:
    def _client(self, source: str) -> PieckUEA:
        config = AttackConfig(
            name="pieck_uea",
            uea_pseudo_source=source,
            num_popular=5,
            mining_rounds=1,
            uea_refine_steps=5,
        )
        return PieckUEA(100, np.array([30]), config, num_items=40, seed=0)

    def _prime_miner(self, client: PieckUEA, model) -> None:
        while not client.miner.ready:
            client.miner.observe(model.item_embeddings)
            model.item_embeddings += 0.01

    def test_popular_source_returns_item_rows(self):
        model, _ = _trained_mf()
        client = self._client("popular")
        self._prime_miner(client, model)
        ids = client._popular_excluding_targets()
        pseudo = client._pseudo_users(model, ids)
        assert np.allclose(pseudo, model.item_embeddings[ids])

    def test_refined_source_differs_from_item_rows(self):
        model, _ = _trained_mf()
        client = self._client("refined")
        self._prime_miner(client, model)
        ids = client._popular_excluding_targets()
        pseudo = client._pseudo_users(model, ids)
        assert pseudo.shape == (8, 8)  # uea_refine_count x dim
        assert not np.allclose(pseudo[: len(ids)], model.item_embeddings[ids])

    def test_refined_source_reuses_refiner(self):
        model, _ = _trained_mf()
        client = self._client("refined")
        self._prime_miner(client, model)
        ids = client._popular_excluding_targets()
        client._pseudo_users(model, ids)
        refiner = client._refiner
        client._pseudo_users(model, ids)
        assert client._refiner is refiner

    def test_participate_uploads_target_gradients(self):
        model, _ = _trained_mf()
        for source in ("popular", "refined"):
            client = self._client(source)
            train_cfg = TrainConfig(lr=1.0)
            update = None
            for round_idx in range(6):
                update = client.participate(model, train_cfg, round_idx)
            assert update is not None, source
            assert update.malicious
            assert list(update.item_ids) == [30]
            assert np.isfinite(update.item_grads).all()
