"""Tests for the dataset registry and real-file loaders."""

import numpy as np
import pytest

from repro.config import DatasetConfig
from repro.datasets.loaders import (
    DATASET_STATS,
    interactions_to_dataset,
    load_dataset,
)


class TestStats:
    def test_paper_table8_statistics(self):
        assert DATASET_STATS["ml-100k"].num_users == 943
        assert DATASET_STATS["ml-100k"].num_items == 1682
        assert DATASET_STATS["ml-1m"].num_interactions == 1_000_209
        assert DATASET_STATS["az"].num_users == 16_566


class TestSyntheticFallback:
    def test_scaled_sizes(self):
        data = load_dataset(DatasetConfig(name="ml-100k", scale=0.1))
        assert data.num_users == 94
        assert data.num_items == 168

    def test_density_preserved_by_square_scaling(self):
        full = DATASET_STATS["ml-100k"]
        full_density = full.num_interactions / (full.num_users * full.num_items)
        data = load_dataset(DatasetConfig(name="ml-100k", scale=0.2))
        density = data.num_train_interactions / (data.num_users * data.num_items)
        # Within a factor ~2 of the real density (split/min-floor slack).
        assert 0.5 * full_density < density < 2.0 * full_density

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset(DatasetConfig(name="netflix"))

    def test_custom_dataset_allowed(self):
        data = load_dataset(DatasetConfig(name="custom", scale=0.05))
        assert data.num_users >= 16

    def test_deterministic_in_seed(self):
        a = load_dataset(DatasetConfig(name="ml-100k", scale=0.05, seed=1))
        b = load_dataset(DatasetConfig(name="ml-100k", scale=0.05, seed=1))
        np.testing.assert_array_equal(a.test_items, b.test_items)


class TestRealFileLoading:
    def test_ml100k_file_parsed(self, tmp_path):
        raw = tmp_path / "u.data"
        rows = []
        for user in range(1, 13):
            for item in range(1, 6):
                rows.append(f"{user}\t{item}\t5\t88125{user}{item}")
        raw.write_text("\n".join(rows))
        data = load_dataset(
            DatasetConfig(name="ml-100k", min_interactions_per_user=3),
            data_root=str(tmp_path),
        )
        assert data.num_users == 12
        assert data.num_items == 5
        # Leave-one-out: each user holds out exactly one item.
        assert all(len(p) == 4 for p in data.train_pos)

    def test_interactions_to_dataset_drops_sparse_users(self):
        users = np.array([0, 0, 0, 1])
        items = np.array([10, 11, 12, 10])
        data = interactions_to_dataset(users, items, name="t", min_interactions_per_user=3)
        assert data.num_users == 1  # user 1 dropped

    def test_interactions_to_dataset_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            interactions_to_dataset(np.array([0]), np.array([1, 2]), name="t")
