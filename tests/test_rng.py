"""Tests for the deterministic RNG utilities."""

import numpy as np

from repro.rng import derive_seed, make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).normal(size=10)
        b = make_rng(42).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).normal(size=10)
        b = make_rng(2).normal(size=10)
        assert not np.allclose(a, b)

    def test_none_seed_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "x", 3) == derive_seed(5, "x", 3)

    def test_label_order_matters(self):
        assert derive_seed(5, "a", "b") != derive_seed(5, "b", "a")

    def test_int_and_string_labels_mix(self):
        assert derive_seed(0, 1, "one") != derive_seed(0, "one", 1)

    def test_distinct_parent_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_result_is_valid_seed(self):
        for labels in [(), ("a",), (1, 2, 3), ("long-label", 99)]:
            seed = derive_seed(123, *labels)
            assert 0 <= seed < 2**31

    def test_extra_label_changes_seed(self):
        assert derive_seed(7, "a") != derive_seed(7, "a", 0)


class TestSpawn:
    def test_spawn_reproducible(self):
        a = spawn(9, "client", 4).integers(0, 1000, size=5)
        b = spawn(9, "client", 4).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_streams_independent(self):
        a = spawn(9, "client", 4).normal(size=8)
        b = spawn(9, "client", 5).normal(size=8)
        assert not np.allclose(a, b)
