"""Tests for the parallel sweep orchestrator and its result cache."""

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    replace,
)
from repro.experiments.reporting import TableResult
from repro.experiments.runner import run_cell, run_cells
from repro.experiments.sweep import (
    CellSpec,
    SweepRunner,
    cell_cache_key,
    cells_from_values,
    dataset_fingerprint,
    execute_cell,
)
from repro.datasets.loaders import load_dataset
from repro.metrics.divergence import user_coverage_ratio
from repro.persistence import load_sweep_entry, save_sweep_entry


def _tiny_config(
    attack: str | None = None,
    defense: str = "none",
    *,
    seed: int = 3,
    rounds: int = 6,
    dataset_seed: int = 5,
) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.08, seed=dataset_seed),
        model=ModelConfig(kind="mf", embedding_dim=8, seed=seed),
        train=TrainConfig(rounds=rounds, users_per_round=12, lr=1.0),
        attack=AttackConfig(name=attack, malicious_ratio=0.1) if attack else None,
        defense=DefenseConfig(name=defense),
        seed=seed,
    )


def _tiny_grid() -> tuple[list[CellSpec], dict[str, DatasetConfig]]:
    specs = [
        CellSpec(config=_tiny_config()),
        CellSpec(config=_tiny_config(attack="pieck_uea")),
        CellSpec(config=_tiny_config(attack="pieck_uea", defense="norm_bound")),
        CellSpec(config=_tiny_config(attack="pieck_ipe"), ks=(5, 10)),
    ]
    datasets = {"default": DatasetConfig(name="custom", scale=0.08, seed=5)}
    return specs, datasets


@pytest.fixture(scope="module")
def tiny_grid_sequential():
    """Sequential reference results for the shared tiny grid."""
    specs, datasets = _tiny_grid()
    return SweepRunner(workers=0).run(specs, datasets)


class TestParity:
    def test_pool_matches_sequential_bit_identical(self, tiny_grid_sequential):
        """2-worker pool execution is byte-identical to sequential."""
        specs, datasets = _tiny_grid()
        parallel = SweepRunner(workers=2).run(specs, datasets)
        assert parallel == tiny_grid_sequential

    def test_results_align_with_spec_order(self, tiny_grid_sequential):
        # The ks=(5, 10) cell returns two pairs, the rest one each.
        assert [len(v) for v in tiny_grid_sequential] == [1, 1, 1, 2]

    def test_execute_cell_matches_run_cell(self, tiny_grid_sequential):
        spec, _ = _tiny_grid()
        cell = run_cell(spec[1].config, dataset=load_dataset(spec[1].config.dataset))
        assert [cell.er, cell.hr] == tiny_grid_sequential[1][0]

    def test_materialised_dataset_accepted(self, tiny_grid_sequential):
        specs, datasets = _tiny_grid()
        loaded = {"default": load_dataset(datasets["default"])}
        assert SweepRunner(workers=0).run(specs, loaded) == tiny_grid_sequential


class TestRunCellKs:
    def test_ks_tuple_matches_individual_runs(self, tiny_dataset):
        config = _tiny_config(attack="pieck_uea")
        merged = run_cell(config, dataset=tiny_dataset, ks=(5, 10, 20))
        for k, cell in zip((5, 10, 20), merged):
            alone = run_cell(config, dataset=tiny_dataset, k=k)
            assert (cell.er, cell.hr) == (alone.er, alone.hr)

    def test_run_cells_default_k(self, tiny_dataset):
        config = _tiny_config()
        (cell,) = run_cells(config, dataset=tiny_dataset)
        assert (cell.er, cell.hr) == (
            run_cell(config, dataset=tiny_dataset).er,
            run_cell(config, dataset=tiny_dataset).hr,
        )

    def test_k_and_ks_mutually_exclusive(self, tiny_dataset):
        with pytest.raises(ValueError, match="either k or ks"):
            run_cell(_tiny_config(), dataset=tiny_dataset, k=5, ks=(5,))

    def test_empty_ks_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="at least one"):
            run_cells(_tiny_config(), dataset=tiny_dataset, ks=())


class TestCache:
    def test_miss_then_hit(self, tmp_path, tiny_grid_sequential):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        first = runner.run(specs, datasets)
        assert runner.last_stats.executed == len(specs)
        assert runner.last_stats.cache_hits == 0
        second = runner.run(specs, datasets)
        assert runner.last_stats.cache_hits == len(specs)
        assert runner.last_stats.executed == 0
        assert runner.last_stats.hit_ratio == 1.0
        assert first == second == tiny_grid_sequential

    def test_cached_entries_on_disk(self, tmp_path):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs, datasets)
        entries = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
        assert len(entries) == len(specs)

    def test_config_change_busts_key(self, tmp_path):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs, datasets)
        changed = [
            replace(spec, config=replace(spec.config, seed=spec.config.seed + 1))
            for spec in specs
        ]
        runner.run(changed, datasets)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == len(specs)

    def test_dataset_change_busts_key(self, tmp_path):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs, datasets)
        other = {"default": DatasetConfig(name="custom", scale=0.08, seed=6)}
        runner.run(specs, other)
        assert runner.last_stats.cache_hits == 0

    def test_resume_after_partial_completion(self, tmp_path, tiny_grid_sequential):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs[:2], datasets)  # "interrupted" after two cells
        results = runner.run(specs, datasets)
        assert runner.last_stats.cache_hits == 2
        assert runner.last_stats.executed == 2
        assert results == tiny_grid_sequential

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_grid_sequential):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs, datasets)
        victim = sorted(tmp_path.glob("*.json"))[0]
        victim.write_text("{ not json")
        results = runner.run(specs, datasets)
        assert runner.last_stats.executed == 1
        assert runner.last_stats.cache_hits == len(specs) - 1
        assert results == tiny_grid_sequential

    def test_shared_datasets_generated_once_per_runner(self, monkeypatch):
        import repro.experiments.sweep as sweep_module

        calls = []
        real_load = sweep_module.load_dataset
        monkeypatch.setattr(
            sweep_module,
            "load_dataset",
            lambda cfg: calls.append(cfg) or real_load(cfg),
        )
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0)
        runner.run(specs, datasets)
        runner.run(specs, datasets)  # e.g. a second table, same dataset
        assert len(calls) == 1

    def test_total_stats_accumulate(self, tmp_path):
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=str(tmp_path))
        runner.run(specs, datasets)
        runner.run(specs, datasets)
        assert runner.total_stats.total == 2 * len(specs)
        assert runner.total_stats.cache_hits == len(specs)


class TestCacheKeys:
    def test_key_is_stable(self, tiny_dataset):
        spec = CellSpec(config=_tiny_config())
        fp = dataset_fingerprint(tiny_dataset)
        assert cell_cache_key(spec, fp) == cell_cache_key(spec, fp)

    def test_key_covers_ks_and_kind(self, tiny_dataset):
        fp = dataset_fingerprint(tiny_dataset)
        base = CellSpec(config=_tiny_config())
        assert cell_cache_key(base, fp) != cell_cache_key(
            replace(base, ks=(5,)), fp
        )
        assert cell_cache_key(base, fp) != cell_cache_key(
            replace(base, kind="pkl_ucr", payload=(1, 10)), fp
        )

    def test_fingerprint_tracks_content(self, tiny_dataset):
        fp = dataset_fingerprint(tiny_dataset)
        mutated = load_dataset(DatasetConfig(name="custom", scale=0.08, seed=5))
        assert dataset_fingerprint(mutated) == dataset_fingerprint(mutated)
        mutated.test_items = mutated.test_items.copy()
        mutated.test_items[0] = (mutated.test_items[0] + 1) % mutated.num_items
        assert dataset_fingerprint(mutated) != fp

    def test_fingerprint_sees_train_pos_mutation_past_csr_cache(self):
        dataset = load_dataset(DatasetConfig(name="custom", scale=0.08, seed=5))
        before = dataset_fingerprint(dataset)
        dataset.train_csr()  # memoise the CSR view, then mutate behind it
        user = next(u for u in range(dataset.num_users) if len(dataset.train_pos[u]))
        dataset.train_pos[user] = dataset.train_pos[user][:-1]
        assert dataset_fingerprint(dataset) != before


class TestSweepEntryPersistence:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "deep" / "entry.json")
        save_sweep_entry(path, key="abc", kind="er_hr", values=[[1.5, 2.5]])
        entry = load_sweep_entry(path)
        assert entry == {"key": "abc", "kind": "er_hr", "values": [[1.5, 2.5]]}

    def test_missing_returns_none(self, tmp_path):
        assert load_sweep_entry(str(tmp_path / "absent.json")) is None

    def test_malformed_payload_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert load_sweep_entry(str(path)) is None

    def test_binary_corrupt_entry_returns_none(self, tmp_path):
        path = tmp_path / "binary.json"
        path.write_bytes(b"\xff\xfe\x00corrupt")
        assert load_sweep_entry(str(path)) is None

    def test_floats_roundtrip_bit_exact(self, tmp_path):
        values = [[100.0 / 3.0, 0.1 + 0.2]]
        path = str(tmp_path / "entry.json")
        save_sweep_entry(path, key="k", kind="er_hr", values=values)
        assert load_sweep_entry(path)["values"] == values


class TestErrors:
    def test_unknown_dataset_key(self):
        specs, datasets = _tiny_grid()
        bad = [replace(specs[0], dataset_key="missing")]
        with pytest.raises(KeyError, match="missing"):
            SweepRunner(workers=0).run(bad, datasets)

    def test_unknown_cell_kind(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown cell kind"):
            execute_cell(CellSpec(config=_tiny_config(), kind="bogus"), tiny_dataset)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=-1)


class TestCoverageVectorization:
    def test_covered_users_matches_bruteforce(self, tiny_dataset):
        ranking = tiny_dataset.popularity_ranking()
        for size in (1, 5, 17):
            popular = ranking[:size]
            expected = [
                u
                for u in range(tiny_dataset.num_users)
                if set(popular.tolist()) & tiny_dataset.train_set(u)
            ]
            got = tiny_dataset.covered_users(popular)
            assert got.tolist() == expected

    def test_covered_users_empty_items(self, tiny_dataset):
        assert tiny_dataset.covered_users(np.zeros(0, dtype=np.int64)).size == 0

    def test_user_coverage_ratio_matches_bruteforce(self, tiny_dataset):
        popular = tiny_dataset.popularity_ranking()[:7]
        popular_set = set(popular.tolist())
        expected = sum(
            1
            for u in range(tiny_dataset.num_users)
            if popular_set & tiny_dataset.train_set(u)
        ) / tiny_dataset.num_users
        assert user_coverage_ratio(tiny_dataset, popular) == expected

    def test_pkl_ucr_cell_matches_reference_loop(self):
        """The Table II executor equals the original per-user loop."""
        from repro.federated.simulation import FederatedSimulation
        from repro.metrics.divergence import pairwise_kl

        config = _tiny_config()
        dataset = load_dataset(config.dataset)
        spec = CellSpec(config=config, kind="pkl_ucr", payload=(1, 5))
        result = execute_cell(spec, dataset)

        sim = FederatedSimulation(config, dataset=dataset)
        sim.run()
        ranking = sim.dataset.popularity_ranking()
        users = sim.user_embedding_matrix()
        for n, pkl_value in zip((1, 5), result["pkl"]):
            popular = ranking[: min(n, sim.dataset.num_items)]
            covered = [
                u
                for u in range(sim.dataset.num_users)
                if set(popular.tolist()) & sim.dataset.train_set(u)
            ]
            item_vecs = sim.model.item_embeddings[popular]
            user_vecs = users[covered] if covered else users
            assert pkl_value == pairwise_kl(item_vecs, user_vecs)


class TestCliSweep:
    def test_sweep_command_runs_tables_through_runner(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.cli as cli

        def fake_table(*, runner=None):
            assert runner is not None
            specs, datasets = _tiny_grid()
            values = runner.run(specs[:2], datasets)
            table = TableResult("Tiny", ["Cell", "ER/HR"])
            for index, value in enumerate(values):
                table.add_row(str(index), str(cells_from_values(value)[0]))
            return table

        monkeypatch.setattr(cli, "_TABLES", {"3": fake_table})
        code = cli_main(
            ["sweep", "3", "--workers", "2", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tiny" in out
        assert "2 executed" in out
        # Second invocation is served from the cache.
        code = cli_main(
            ["sweep", "3", "--workers", "2", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 from cache" in out
        assert "cache hit ratio 100%" in out

    def test_sweep_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "42"])

    def test_sweep_rejects_negative_workers(self):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "5", "--workers", "-1"])

    def test_unknown_table_suggests_close_id(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["sweep", "table3"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean '3'" in err

    def test_unknown_table_lists_valid_ids(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "99"])
        assert "choose from" in capsys.readouterr().err

    def test_dry_run_lists_grid_without_executing(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.cli as cli

        executed = []

        def fake_table(*, runner=None):
            specs, datasets = _tiny_grid()
            values = runner.run(specs[:2], datasets)
            executed.append(values)
            return TableResult("Tiny", ["Cell", "ER/HR"])

        monkeypatch.setattr(cli, "_TABLES", {"3": fake_table})
        # Warm one cell so the dry run shows a cached/pending mix.
        warm = SweepRunner(workers=0, cache_dir=str(tmp_path))
        specs, datasets = _tiny_grid()
        warm.run(specs[:1], datasets)

        code = cli_main(
            ["sweep", "3", "--dry-run", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        assert executed == []  # the generator was stopped pre-execution
        out = capsys.readouterr().out
        assert "1 cached, 1 pending" in out
        assert "nothing executed" in out
        # The cache gained nothing: dry runs never write.
        assert len([n for n in os.listdir(tmp_path) if n.endswith(".json")]) == 1

    def test_dry_run_without_cache_shows_all_pending(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli

        def fake_table(*, runner=None):
            specs, datasets = _tiny_grid()
            runner.run(specs[:2], datasets)
            return TableResult("Tiny", ["Cell", "ER/HR"])

        monkeypatch.setattr(cli, "_TABLES", {"3": fake_table})
        assert cli_main(["sweep", "3", "--dry-run"]) == 0
        assert "0 cached, 2 pending" in capsys.readouterr().out

    def test_shared_backend_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["sweep", "3", "--backend", "shared"])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_shared_backend_runs_table_to_completion(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.cli as cli

        def fake_table(*, runner=None):
            specs, datasets = _tiny_grid()
            values = runner.run(specs[:2], datasets)
            table = TableResult("Tiny", ["Cell", "ER/HR"])
            for index, value in enumerate(values):
                table.add_row(str(index), str(cells_from_values(value)[0]))
            return table

        monkeypatch.setattr(cli, "_TABLES", {"3": fake_table})
        code = cli_main(
            [
                "sweep", "3",
                "--backend", "shared",
                "--owner", "test-worker",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shared cache, worker test-worker" in out
        assert "2 executed" in out
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".lease")]


class TestQuarantineCounting:
    def test_corrupt_entry_counted_and_reexecuted(self, tmp_path, capsys):
        cache_dir = str(tmp_path)
        specs, datasets = _tiny_grid()
        runner = SweepRunner(workers=0, cache_dir=cache_dir)
        first = runner.run(specs[:1], datasets)
        [entry] = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
        path = os.path.join(cache_dir, entry)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x08
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        rerun = SweepRunner(workers=0, cache_dir=cache_dir)
        second = rerun.run(specs[:1], datasets)
        assert second == first
        assert rerun.last_stats.quarantined == 1
        assert rerun.last_stats.cache_hits == 0
        assert rerun.last_stats.executed == 1
        # The corrupt specimen was moved aside, and the fresh entry is
        # back in place, verified.
        from repro.persistence import read_sweep_entry

        assert os.path.exists(path + ".quarantined")
        assert read_sweep_entry(path)[1] == "verified"
