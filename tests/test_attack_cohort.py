"""MaliciousCohort parity and shared-mining-ledger property tests.

The cohort's contract mirrors the batch engine's: for any seed, the
struct-of-arrays team path (``engine="batch"``, which attaches a
:class:`~repro.attacks.cohort.MaliciousCohort`) must reproduce the
per-object ``participate`` loop (``engine="loop"``) bit for bit —
same mining trajectories, same participation scales, same uploads,
same ``SimulationResult`` history.  These tests assert that end to end
for every attack x model x malicious-ratio combination, and
property-test the building blocks (the shared Δ-Norm observation
ledger, the vectorised participation counters, the stacked bounded
step kernel).
"""

import numpy as np
import pytest

from repro.attacks.base import (
    MaliciousClient,
    bounded_step_gradient,
    stacked_step_gradients,
)
from repro.attacks.cohort import CohortUpload, MaliciousCohort
from repro.attacks.mining import (
    CohortMiner,
    DeltaNormTracker,
    PopularItemMiner,
    RoundSnapshotCache,
)
from repro.attacks.registry import build_malicious_clients, build_malicious_cohort

# Cross-product parity sweeps (attack x model x ratio, end to end) are
# the suite's slowest files; the marker lets CI legs split them off.
pytestmark = pytest.mark.slow
from repro.config import (
    AttackConfig,
    DatasetConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    replace,
)
from repro.datasets.loaders import load_dataset
from repro.federated.simulation import FederatedSimulation
from repro.models.base import build_model

#: Ratios spanning "one lone client" to "a real team" on the tiny set.
RATIOS = (0.003, 0.01, 0.05)
ATTACKS = (
    "none",
    "fedattack",
    "fedrecattack",
    "pipattack",
    "a_ra",
    "a_hum",
    "pieck_ipe",
    "pieck_uea",
)


@pytest.fixture(scope="module")
def cohort_dataset():
    """One shared tiny dataset so 100+ simulations skip regeneration."""
    return load_dataset(DatasetConfig(name="custom", scale=0.1, seed=3))


def _config(kind: str) -> ExperimentConfig:
    if kind == "mf":
        model = ModelConfig(kind="mf", embedding_dim=8, seed=3)
        train = TrainConfig(rounds=8, users_per_round=24, lr=1.0, eval_every=4)
    else:
        model = ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3)
        train = TrainConfig(rounds=6, users_per_round=24, lr=0.05, eval_every=3)
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.1, seed=3),
        model=model,
        train=train,
        seed=3,
    )


def assert_cohort_parity(cfg, dataset):
    """Loop vs batch trajectories, model state, and anti-fallback."""
    loop_sim = FederatedSimulation(cfg, dataset, engine="loop")
    batch_sim = FederatedSimulation(cfg, dataset, engine="batch")
    loop = loop_sim.run()
    batch = batch_sim.run()
    assert loop.exposure == batch.exposure
    assert loop.hit_ratio == batch.hit_ratio
    assert loop.history == batch.history
    assert np.array_equal(
        loop_sim.model.item_embeddings, batch_sim.model.item_embeddings
    )
    if batch_sim.malicious_clients:
        assert batch_sim.malicious_cohort is not None
        assert batch_sim._batch_engine.object_malicious_rounds == 0
    return loop_sim, batch_sim


# ----------------------------------------------------------------------
# End-to-end parity: every attack x model x malicious ratio
# ----------------------------------------------------------------------


class TestCohortParity:
    @pytest.mark.parametrize("ratio", RATIOS)
    @pytest.mark.parametrize("attack", ATTACKS)
    def test_mf_parity(self, cohort_dataset, attack, ratio):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(name=attack, malicious_ratio=ratio),
        )
        assert_cohort_parity(cfg, cohort_dataset)

    @pytest.mark.parametrize("ratio", RATIOS)
    @pytest.mark.parametrize("attack", ATTACKS)
    def test_ncf_parity(self, cohort_dataset, attack, ratio):
        cfg = replace(
            _config("ncf"),
            attack=AttackConfig(name=attack, malicious_ratio=ratio),
        )
        assert_cohort_parity(cfg, cohort_dataset)

    def test_grad_clip_parity(self, cohort_dataset):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(
                name="pieck_ipe", malicious_ratio=0.05, grad_clip=0.4
            ),
        )
        assert_cohort_parity(cfg, cohort_dataset)

    def test_multi_target_together_parity(self, cohort_dataset):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(
                name="pieck_uea",
                malicious_ratio=0.05,
                num_targets=3,
                multi_target_strategy="together",
            ),
        )
        assert_cohort_parity(cfg, cohort_dataset)

    def test_refined_pseudo_users_parity(self, cohort_dataset):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(
                name="pieck_uea", malicious_ratio=0.05, uea_pseudo_source="refined"
            ),
        )
        assert_cohort_parity(cfg, cohort_dataset)

    def test_defended_parity(self, cohort_dataset):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(name="pieck_ipe", malicious_ratio=0.05),
        )
        from repro.config import DefenseConfig

        cfg = replace(cfg, defense=DefenseConfig(name="median"))
        assert_cohort_parity(cfg, cohort_dataset)

    def test_loop_engine_builds_no_cohort(self, cohort_dataset):
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(name="pieck_ipe", malicious_ratio=0.05),
        )
        sim = FederatedSimulation(cfg, cohort_dataset, engine="loop")
        assert sim.malicious_cohort is None

    def test_ipe_payload_dedup(self, cohort_dataset):
        """The IPE round optimises distinct mined sets, not clients."""
        cfg = replace(
            _config("mf"),
            attack=AttackConfig(name="pieck_ipe", malicious_ratio=0.1),
        )
        sim = FederatedSimulation(cfg, cohort_dataset, engine="batch")
        sim.run()
        cohort = sim.malicious_cohort
        assert cohort is not None
        assert cohort.last_round_payloads <= cohort.num_clients


# ----------------------------------------------------------------------
# Cohort building blocks vs per-object references
# ----------------------------------------------------------------------


class TestCohortUploadsMatchObjects:
    """Round-by-round upload equality under an arbitrary schedule."""

    @pytest.mark.parametrize("attack", [a for a in ATTACKS if a != "none"])
    def test_uploads_bitwise_equal(self, cohort_dataset, attack):
        cfg = AttackConfig(name=attack, malicious_ratio=0.05, mining_rounds=2)
        kwargs = dict(
            dataset=cohort_dataset,
            config=cfg,
            targets=np.array([3, 11]),
            embedding_dim=6,
            num_malicious=5,
            first_user_id=cohort_dataset.num_users,
            seed=9,
        )
        objects = build_malicious_clients(attack, **kwargs)
        cohort = build_malicious_cohort(attack, **kwargs)
        model_a = build_model("mf", cohort_dataset.num_items, 6, seed=4)
        model_b = build_model("mf", cohort_dataset.num_items, 6, seed=4)
        train_cfg = TrainConfig(lr=1.0)
        rng = np.random.default_rng(0)
        for round_idx in range(10):
            rows = np.sort(
                rng.choice(5, size=int(rng.integers(1, 6)), replace=False)
            )
            reference = {
                int(row): objects[int(row)].participate(
                    model_a, train_cfg, round_idx
                )
                for row in rows
            }
            uploads = cohort.compute_uploads(model_b, train_cfg, round_idx, rows)
            for row, upload in zip(rows, uploads):
                expected = reference[int(row)]
                if expected is None:
                    assert upload is None
                    continue
                assert isinstance(upload, CohortUpload)
                assert upload.user_id == expected.user_id
                assert upload.malicious and expected.malicious
                assert np.array_equal(upload.item_ids, expected.item_ids)
                assert np.array_equal(upload.item_grads, expected.item_grads)
                assert len(upload.param_grads) == len(expected.param_grads)
                for got, ref in zip(upload.param_grads, expected.param_grads):
                    assert np.array_equal(got, ref)

    def test_reduced_precision_uploads_keep_dtype(self, cohort_dataset):
        """float32 models upload float32 poison on both paths, bitwise.

        FedAttack's gradients flow straight out of ``model.backward``,
        so they carry the model's own precision; the cohort's scale
        broadcast must not promote them to float64 (the object path's
        Python-float scale does not).
        """
        kwargs = dict(
            dataset=cohort_dataset,
            config=AttackConfig(name="fedattack", malicious_ratio=0.05),
            targets=np.array([3]),
            embedding_dim=6,
            num_malicious=3,
            first_user_id=cohort_dataset.num_users,
            seed=2,
        )
        objects = build_malicious_clients("fedattack", **kwargs)
        cohort = build_malicious_cohort("fedattack", **kwargs)
        model_a = build_model("mf", cohort_dataset.num_items, 6, seed=1)
        model_a.item_embeddings = model_a.item_embeddings.astype(np.float32)
        model_b = build_model("mf", cohort_dataset.num_items, 6, seed=1)
        model_b.item_embeddings = model_b.item_embeddings.astype(np.float32)
        for client in objects + cohort.clients:
            client.user_embedding = client.user_embedding.astype(np.float32)
        rows = np.arange(3)
        for round_idx in range(2):
            reference = [
                objects[row].participate(model_a, TrainConfig(lr=1.0), round_idx)
                for row in rows
            ]
            uploads = cohort.compute_uploads(
                model_b, TrainConfig(lr=1.0), round_idx, rows
            )
            for upload, expected in zip(uploads, reference):
                assert upload.item_grads.dtype == np.float32
                assert expected.item_grads.dtype == np.float32
                assert np.array_equal(upload.item_grads, expected.item_grads)

    def test_payload_telemetry_resets_on_mining_round(self, cohort_dataset):
        """A round with zero payloads reports zero, not the last count."""
        kwargs = dict(
            dataset=cohort_dataset,
            config=AttackConfig(name="pieck_ipe", mining_rounds=3),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=2,
            first_user_id=cohort_dataset.num_users,
        )
        cohort = build_malicious_cohort("pieck_ipe", **kwargs)
        model = build_model("mf", cohort_dataset.num_items, 4, seed=0)
        rows = np.arange(2)
        for round_idx in range(4):
            cohort.compute_uploads(model, TrainConfig(lr=1.0), round_idx, rows)
        assert cohort.last_round_payloads > 0  # sets frozen, uploads flowing
        # Fresh cohort mid-mining: the counter must read 0 again.
        fresh = build_malicious_cohort("pieck_ipe", **kwargs)
        fresh.last_round_payloads = 99
        fresh.compute_uploads(model, TrainConfig(lr=1.0), 0, rows)
        assert fresh.last_round_payloads == 0

    def test_times_sampled_mirrors_objects(self, cohort_dataset):
        kwargs = dict(
            dataset=cohort_dataset,
            config=AttackConfig(name="fedattack", malicious_ratio=0.05),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=4,
            first_user_id=cohort_dataset.num_users,
        )
        objects = build_malicious_clients("fedattack", **kwargs)
        cohort = build_malicious_cohort("fedattack", **kwargs)
        model = build_model("mf", cohort_dataset.num_items, 4, seed=0)
        rng = np.random.default_rng(7)
        for round_idx in range(12):
            rows = rng.choice(4, size=int(rng.integers(1, 5)), replace=False)
            cohort.compute_uploads(model, TrainConfig(lr=1.0), round_idx, rows)
            for row in rows:
                objects[int(row)]._participation_scale(round_idx)
        assert cohort.times_sampled.tolist() == [
            client._times_sampled for client in objects
        ]

    def test_heterogeneous_team_rejected(self, cohort_dataset):
        cfg = AttackConfig(name="pieck_ipe")
        kwargs = dict(
            dataset=cohort_dataset,
            config=cfg,
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=1,
            first_user_id=100,
        )
        mixed = build_malicious_clients("pieck_ipe", **kwargs) + (
            build_malicious_clients("fedattack", **kwargs)
        )
        with pytest.raises(ValueError, match="one attack class"):
            MaliciousCohort(mixed)

    def test_empty_team_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MaliciousCohort([])


# ----------------------------------------------------------------------
# Shared observation ledger (CohortMiner) properties
# ----------------------------------------------------------------------


def random_schedule(rng, num_clients, rounds):
    """Random per-round participant subsets, some rounds empty."""
    schedule = []
    for _ in range(rounds):
        size = int(rng.integers(0, num_clients + 1))
        schedule.append(
            np.sort(rng.choice(num_clients, size=size, replace=False))
        )
    return schedule


class TestCohortMiner:
    NUM_ITEMS = 17
    DIM = 5

    def _matrices(self, rng, rounds):
        return [
            rng.normal(size=(self.NUM_ITEMS, self.DIM)) for _ in range(rounds)
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_accumulators_match_per_client_trackers(self, seed):
        rng = np.random.default_rng(seed)
        num_clients, rounds, mining_rounds = 6, 14, 3
        schedule = random_schedule(rng, num_clients, rounds)
        matrices = self._matrices(rng, rounds)

        miner = CohortMiner(self.NUM_ITEMS, mining_rounds, 4, num_clients)
        references = [
            PopularItemMiner(self.NUM_ITEMS, mining_rounds, 4)
            for _ in range(num_clients)
        ]
        for round_idx, rows in enumerate(schedule):
            if len(rows):
                miner.observe(rows, matrices[round_idx], round_idx)
            for row in rows:
                references[int(row)].observe(matrices[round_idx])
            for row in range(num_clients):
                assert miner.ready[row] == references[row].ready
                if references[row].ready:
                    assert np.array_equal(
                        miner.mined[row], references[row].popular_items()
                    )
                else:
                    assert np.array_equal(
                        miner.accumulated[row],
                        references[row]._tracker.accumulated,
                    )

    def test_snapshot_copies_independent_of_team_size(self):
        rng = np.random.default_rng(3)
        rounds = 8
        matrices = self._matrices(rng, rounds)
        copies = []
        for num_clients in (3, 30):
            miner = CohortMiner(self.NUM_ITEMS, 3, 4, num_clients)
            for round_idx in range(rounds):
                miner.observe(
                    np.arange(num_clients), matrices[round_idx], round_idx
                )
            copies.append(miner.snapshot_copies)
        assert copies[0] == copies[1]
        assert copies[0] <= rounds

    def test_ledger_frees_snapshots_when_all_ready(self):
        rng = np.random.default_rng(4)
        miner = CohortMiner(self.NUM_ITEMS, 2, 4, 5)
        for round_idx in range(4):
            miner.observe(
                np.arange(5), rng.normal(size=(self.NUM_ITEMS, self.DIM)), round_idx
            )
        assert miner.all_ready
        assert miner.live_snapshots() == 0
        # Further observations are no-ops for frozen miners.
        before = miner.mined.copy()
        miner.observe(
            np.arange(5), rng.normal(size=(self.NUM_ITEMS, self.DIM)), 4
        )
        assert np.array_equal(miner.mined, before)
        assert miner.snapshot_copies <= 4

    def test_live_snapshots_bounded_by_distinct_baselines(self):
        rng = np.random.default_rng(5)
        miner = CohortMiner(self.NUM_ITEMS, 4, 4, 8)
        for round_idx in range(6):
            rows = np.sort(rng.choice(8, size=3, replace=False))
            miner.observe(
                rows, rng.normal(size=(self.NUM_ITEMS, self.DIM)), round_idx
            )
            assert miner.live_snapshots() <= round_idx + 1

    def test_shape_mismatch_rejected(self):
        miner = CohortMiner(self.NUM_ITEMS, 2, 4, 2)
        with pytest.raises(ValueError, match="items"):
            miner.observe(np.array([0]), np.zeros((3, self.DIM)), 0)


# ----------------------------------------------------------------------
# Shared same-round snapshots for per-object trackers (satellite fix)
# ----------------------------------------------------------------------


class TestRoundSnapshotCache:
    def test_same_round_observers_share_one_copy(self):
        cache = RoundSnapshotCache()
        matrix = np.arange(12, dtype=np.float64).reshape(4, 3)
        trackers = [DeltaNormTracker(4) for _ in range(5)]
        for tracker in trackers:
            tracker.observe(matrix, snapshot=cache.get(matrix, round_idx=0))
        assert cache.copies == 1
        baselines = {id(tracker._last) for tracker in trackers}
        assert len(baselines) == 1
        assert trackers[0]._last is not matrix

    def test_new_round_takes_new_copy(self):
        cache = RoundSnapshotCache()
        matrix = np.zeros((2, 2))
        cache.get(matrix, 0)
        cache.get(matrix, 0)
        cache.get(matrix, 1)
        assert cache.copies == 2

    def test_accumulation_identical_with_and_without_cache(self):
        rng = np.random.default_rng(0)
        cache = RoundSnapshotCache()
        shared = DeltaNormTracker(6)
        private = DeltaNormTracker(6)
        for round_idx in range(5):
            matrix = rng.normal(size=(6, 3))
            shared.observe(matrix, snapshot=cache.get(matrix, round_idx))
            private.observe(matrix)
        assert np.array_equal(shared.accumulated, private.accumulated)

    def test_top_items_cached_between_observations(self):
        tracker = DeltaNormTracker(4)
        tracker.observe(np.zeros((4, 2)))
        tracker.observe(np.eye(4, 2))
        first = tracker.top_items(3)
        assert tracker.top_items(3) is not None
        assert tracker._order is not None  # cached, no re-sort
        # Only the requested prefix is retained (a full permutation per
        # tracker would not scale to production catalogues) ...
        assert len(tracker._order) == 3
        again = tracker.top_items(2)
        assert np.array_equal(first[:2], again)
        # ... and a larger request re-sorts and still matches.
        assert np.array_equal(tracker.top_items(4)[:3], first)
        tracker.observe(np.ones((4, 2)))
        assert tracker._order is None  # invalidated by new observation


# ----------------------------------------------------------------------
# Stacked bounded-step kernel
# ----------------------------------------------------------------------


class TestStackedStepGradients:
    def test_rows_independent_of_stacking(self):
        rng = np.random.default_rng(1)
        old = rng.normal(size=(9, 7))
        new = old + rng.normal(size=(9, 7)) * rng.lognormal(size=(9, 1))
        stacked = stacked_step_gradients(old, new, 0.5, max_step=1.0)
        for row in range(9):
            single = stacked_step_gradients(
                old[row : row + 1], new[row : row + 1], 0.5, max_step=1.0
            )
            assert np.array_equal(stacked[row], single[0])

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(2)
        old = rng.normal(size=(6, 5))
        new = old + rng.normal(size=(6, 5)) * 3.0
        stacked = stacked_step_gradients(old, new, 0.25, max_step=1.5)
        for row in range(6):
            scalar = bounded_step_gradient(old[row], new[row], 0.25, 1.5)
            np.testing.assert_allclose(stacked[row], scalar, rtol=1e-12)

    def test_unclipped_rows_exact_and_input_unmutated(self):
        rng = np.random.default_rng(3)
        old = rng.normal(size=(4, 3))
        delta = rng.normal(size=(4, 3)) * 0.01
        new = old + delta
        new_copy = new.copy()
        stacked = stacked_step_gradients(old, new, 1.0, max_step=10.0)
        for row in range(4):
            assert np.array_equal(
                stacked[row], bounded_step_gradient(old[row], new[row], 1.0, 10.0)
            )
        assert np.array_equal(new, new_copy)

    def test_zero_max_step_disables_clipping(self):
        old = np.zeros((2, 3))
        new = np.full((2, 3), 100.0)
        stacked = stacked_step_gradients(old, new, 1.0, max_step=0.0)
        assert np.array_equal(stacked, old - new)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            stacked_step_gradients(np.zeros((1, 2)), np.ones((1, 2)), 0.0, 1.0)


# ----------------------------------------------------------------------
# Object-path template still enforces the participation contract
# ----------------------------------------------------------------------


class TestParticipateTemplate:
    def test_scale_counts_mining_rounds(self, cohort_dataset):
        """PIECK counts participations even while uploading nothing."""
        clients = build_malicious_clients(
            "pieck_ipe",
            dataset=cohort_dataset,
            config=AttackConfig(name="pieck_ipe", mining_rounds=2),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=1,
            first_user_id=cohort_dataset.num_users,
        )
        model = build_model("mf", cohort_dataset.num_items, 4, seed=0)
        client = clients[0]
        assert client.participate(model, TrainConfig(lr=1.0), 0) is None
        assert client.participate(model, TrainConfig(lr=1.0), 1) is None
        assert client._times_sampled == 2
        update = client.participate(model, TrainConfig(lr=1.0), 2)
        assert update is not None and update.malicious

    def test_round_payload_is_abstract(self):
        with pytest.raises(TypeError):
            MaliciousClient(0, np.array([1]), AttackConfig())
