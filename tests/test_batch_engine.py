"""Loop-vs-batch engine parity and batch building-block unit tests.

The batch engine's contract is *bit-identical trajectories*: for any
seed, ``engine="batch"`` must reproduce the reference per-client loop
exactly — same RNG draws, same gradients, same model updates, same
evaluation history. These tests assert that end to end and for each
vectorised building block (seed derivation, negative sampling, ragged
batch stacking, the fused scatter, the batched local step).
"""

import numpy as np
import pytest

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    replace,
)
from repro.datasets.sampling import (
    sample_local_batch,
    sample_local_batches,
    sample_negatives,
    sample_negatives_batch,
)
from repro.federated.aggregation import SumAggregator, scatter_sum
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.simulation import FederatedSimulation
from repro.models.base import build_model, segment_sums
from repro.models.losses import bce_loss_and_grad
from repro.rng import (
    _seed_sequence_states,
    derive_seed,
    derive_seed_batch,
    spawn,
    spawn_batch,
)


def run_both(config, rounds=None, **kwargs):
    loop = FederatedSimulation(config, engine="loop", **kwargs).run(rounds)
    batch = FederatedSimulation(config, engine="batch", **kwargs).run(rounds)
    return loop, batch


def assert_identical_runs(loop, batch):
    """Both engines must produce the same history bit for bit."""
    assert loop.exposure == batch.exposure
    assert loop.hit_ratio == batch.hit_ratio
    assert len(loop.history) == len(batch.history)
    for rec_a, rec_b in zip(loop.history, batch.history):
        assert rec_a == rec_b


# ----------------------------------------------------------------------
# End-to-end parity
# ----------------------------------------------------------------------


class TestEngineParity:
    def test_mf_clean_identical_history(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, eval_every=5)
        )
        assert_identical_runs(*run_both(cfg))

    def test_ncf_clean_identical_history(self, tiny_ncf_config):
        cfg = replace(
            tiny_ncf_config, train=replace(tiny_ncf_config.train, eval_every=5)
        )
        assert_identical_runs(*run_both(cfg, rounds=10))

    def test_mf_attacked_identical(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
            train=replace(tiny_mf_config.train, eval_every=5),
        )
        assert_identical_runs(*run_both(cfg))

    def test_ncf_attacked_identical(self, tiny_ncf_config):
        cfg = replace(
            tiny_ncf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
        )
        assert_identical_runs(*run_both(cfg, rounds=10))

    @pytest.mark.parametrize("defense", ["median", "norm_bound", "regularization"])
    def test_defended_identical(self, tiny_mf_config, defense):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
            defense=DefenseConfig(name=defense),
        )
        assert_identical_runs(*run_both(cfg, rounds=12))

    def test_audit_log_identical(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.1),
        )
        loop_sim = FederatedSimulation(cfg, engine="loop", audit=True)
        batch_sim = FederatedSimulation(cfg, engine="batch", audit=True)
        loop = loop_sim.run(10)
        batch = batch_sim.run(10)
        assert_identical_runs(loop, batch)
        assert len(loop_sim.audit_log.records) == len(batch_sim.audit_log.records)

    def test_model_state_identical_after_rounds(self, tiny_mf_config):
        a = FederatedSimulation(tiny_mf_config, engine="loop")
        b = FederatedSimulation(tiny_mf_config, engine="batch")
        for round_idx in range(8):
            a.run_round(round_idx)
            b.run_round(round_idx)
        assert np.array_equal(a.model.item_embeddings, b.model.item_embeddings)
        assert np.array_equal(a.user_embedding_matrix(), b.user_embedding_matrix())

    def test_client_lr_range_identical(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config,
            train=replace(tiny_mf_config.train, client_lr_range=(0.1, 2.0)),
        )
        assert_identical_runs(*run_both(cfg, rounds=8))

    def test_bpr_batched_identical(self, tiny_mf_config):
        cfg = replace(
            tiny_mf_config, train=replace(tiny_mf_config.train, loss="bpr")
        )
        assert_identical_runs(*run_both(cfg, rounds=6))

    def test_unknown_engine_rejected(self, tiny_mf_config):
        with pytest.raises(ValueError, match="engine"):
            FederatedSimulation(tiny_mf_config, engine="turbo")


# ----------------------------------------------------------------------
# Vectorised RNG plumbing
# ----------------------------------------------------------------------


class TestBatchRng:
    def test_derive_seed_batch_matches_scalar(self):
        ids = np.arange(0, 7000, 13)
        batch = derive_seed_batch(12345, ("client-round",), ids, (42,))
        scalar = [derive_seed(12345, "client-round", int(i), 42) for i in ids]
        assert batch.tolist() == scalar

    def test_seed_sequence_states_match_numpy(self):
        seeds = np.random.default_rng(0).integers(0, 2**31, 500)
        states = _seed_sequence_states(seeds)
        for seed, state in zip(seeds[:50], states[:50]):
            expected = np.random.SeedSequence(int(seed)).generate_state(4, np.uint64)
            assert np.array_equal(state, expected)

    def test_spawn_batch_streams_match_spawn(self):
        ids = np.array([0, 1, 17, 999_999])
        gens = spawn_batch(7, ("client-round",), ids, (3,))
        for gen, user_id in zip(gens, ids):
            reference = spawn(7, "client-round", int(user_id), 3)
            assert np.array_equal(
                gen.integers(0, 10**6, 16), reference.integers(0, 10**6, 16)
            )


# ----------------------------------------------------------------------
# Vectorised negative sampling and ragged batch stacking
# ----------------------------------------------------------------------


def ragged_positives(num_items, rng):
    """Positive sets covering the ragged edge cases, including size 1."""
    sizes = [1, 1, 2, 3, 5, 8, num_items // 2, num_items - 2]
    return [
        np.sort(rng.choice(num_items, size=s, replace=False)).astype(np.int64)
        for s in sizes
    ]


class TestBatchSampling:
    @pytest.mark.parametrize("negative_ratio", [1, 4])
    def test_negatives_bitwise_equal_scalar(self, negative_ratio):
        num_items = 40
        positives = ragged_positives(num_items, np.random.default_rng(5))
        ids = np.arange(len(positives))
        counts = np.array([negative_ratio * len(p) for p in positives])
        scalar = [
            sample_negatives(
                spawn(9, "client-round", int(i), 3), p, num_items, int(c)
            )
            for i, p, c in zip(ids, positives, counts)
        ]
        batch = sample_negatives_batch(
            spawn_batch(9, ("client-round",), ids, (3,)),
            positives,
            num_items,
            counts,
        )
        for expected, got in zip(scalar, batch):
            assert np.array_equal(expected, got)

    def test_local_batches_match_scalar_rows(self):
        num_items = 60
        positives = ragged_positives(num_items, np.random.default_rng(2))
        ids = np.arange(len(positives))
        item_ids, labels, lengths = sample_local_batches(
            spawn_batch(4, ("client-round",), ids, (0,)),
            positives,
            num_items,
            1,
        )
        assert item_ids.shape == labels.shape == (int(lengths.sum()),)
        start = 0
        for user_id, pos in zip(ids, positives):
            ref_items, ref_labels = sample_local_batch(
                spawn(4, "client-round", int(user_id), 0), pos, num_items, 1
            )
            seg = slice(start, start + int(lengths[user_id]))
            assert np.array_equal(item_ids[seg], ref_items)
            assert np.array_equal(labels[seg], ref_labels)
            start += int(lengths[user_id])

    def test_single_interaction_client(self):
        positives = [np.array([3], dtype=np.int64)]
        item_ids, labels, lengths = sample_local_batches(
            spawn_batch(0, ("client-round",), np.array([0]), (0,)),
            positives,
            num_items=10,
            negative_ratio=1,
        )
        assert lengths.tolist() == [2]
        assert item_ids[0] == 3 and labels.tolist() == [1.0, 0.0]


# ----------------------------------------------------------------------
# Fused scatter aggregation
# ----------------------------------------------------------------------


class TestScatter:
    def test_scatter_sum_matches_grouped_reference(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 50, size=4000)
        grads = rng.normal(size=(4000, 8))
        dense = scatter_sum(ids, grads, num_items=50)
        per_item: dict[int, list[np.ndarray]] = {}
        for item_id, grad in zip(ids, grads):
            per_item.setdefault(int(item_id), []).append(grad)
        for item_id, stack in per_item.items():
            assert np.array_equal(dense[item_id], np.stack(stack).sum(axis=0))
        untouched = np.setdiff1d(np.arange(50), ids)
        assert np.all(dense[untouched] == 0.0)

    def test_apply_scatter_matches_apply_updates(self):
        rng = np.random.default_rng(1)
        updates = []
        for user_id in range(9):
            n = int(rng.integers(1, 12))
            ids = rng.choice(30, size=n, replace=False)
            updates.append(
                ClientUpdate(user_id, ids, rng.normal(size=(n, 6)))
            )
        model_a = build_model("mf", 30, 6, seed=2)
        model_b = build_model("mf", 30, 6, seed=2)
        Server(model_a, lr=0.5).apply_updates(updates)
        Server(model_b, lr=0.5).apply_scatter(
            np.concatenate([u.item_ids for u in updates]),
            np.concatenate([u.item_grads for u in updates]),
        )
        assert np.array_equal(model_a.item_embeddings, model_b.item_embeddings)

    def test_apply_scatter_guards(self):
        from repro.defenses.robust import MedianAggregator

        model = build_model("mf", 10, 4, seed=0)
        robust = Server(model, lr=1.0, aggregator=MedianAggregator())
        with pytest.raises(ValueError, match="sum aggregator"):
            robust.apply_scatter(np.array([0]), np.zeros((1, 4)))
        filtered = Server(model, lr=1.0, update_filter=lambda updates: updates)
        with pytest.raises(ValueError, match="filter"):
            filtered.apply_scatter(np.array([0]), np.zeros((1, 4)))

    def test_sum_aggregator_advertises_scatter(self):
        from repro.defenses.robust import MedianAggregator

        assert SumAggregator.supports_scatter
        assert not MedianAggregator.supports_scatter


# ----------------------------------------------------------------------
# Batched local step vs per-client reference
# ----------------------------------------------------------------------


def ragged_step_inputs(model, rng, lengths):
    num_clients = len(lengths)
    total = int(np.sum(lengths))
    user_vecs = rng.normal(size=(num_clients, model.embedding_dim))
    item_ids = rng.integers(0, model.num_items, size=total)
    item_vecs = model.item_embeddings[item_ids]
    labels = (rng.random(total) < 0.5).astype(np.float64)
    return user_vecs, item_vecs, labels


@pytest.mark.parametrize("kind", ["mf", "ncf"])
def test_batch_local_step_matches_per_client(kind):
    rng = np.random.default_rng(3)
    model = build_model(kind, num_items=25, embedding_dim=6, seed=1)
    # Ragged segments down to the protocol minimum of 2 rows (a client
    # with a single interaction trains on 1 positive + q negatives); MF
    # additionally covers a degenerate 1-row segment, which NCF cannot
    # guarantee bit-exactly (see NCFModel.batch_local_step).
    lengths = np.array([1 if kind == "mf" else 2, 4, 9, 2, 33])
    user_vecs, item_vecs, labels = ragged_step_inputs(model, rng, lengths)

    result = model.batch_local_step(user_vecs, item_vecs, labels, lengths)

    start = 0
    for row, length in enumerate(lengths):
        seg = slice(start, start + int(length))
        logits, cache = model.forward(user_vecs[row], item_vecs[seg])
        _, dlogits = bce_loss_and_grad(logits, labels[seg])
        bundle = model.backward(cache, dlogits)
        assert np.array_equal(result.item_grads[seg], bundle.items)
        assert np.array_equal(result.user_grads[row], bundle.users.sum(axis=0))
        for stack, reference in zip(result.param_grads, bundle.params):
            assert np.array_equal(stack[row], reference)
        start += int(length)


def test_segment_sums_matches_slice_sums():
    rng = np.random.default_rng(4)
    lengths = np.array([1, 7, 19, 2])
    rows = rng.normal(size=(int(lengths.sum()), 5))
    sums = segment_sums(rows, lengths, 5)
    start = 0
    for row, length in enumerate(lengths):
        assert np.array_equal(sums[row], rows[start : start + int(length)].sum(axis=0))
        start += int(length)


def test_runner_engine_switch(tiny_mf_config):
    from repro.experiments.runner import run_cell

    loop_cell = run_cell(tiny_mf_config, engine="loop")
    batch_cell = run_cell(tiny_mf_config, engine="batch")
    assert loop_cell == batch_cell
