"""Shared fixtures: tiny datasets and experiment configs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    AttackConfig,
    DatasetConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.datasets.synthetic import generate_longtail_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small long-tail dataset shared by fast tests (read-only)."""
    return generate_longtail_dataset(
        num_users=40, num_items=80, num_interactions=900, seed=7, name="tiny"
    )


@pytest.fixture()
def tiny_mf_config():
    """A minutes-scale MF experiment config for end-to-end tests."""
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.1, seed=3),
        model=ModelConfig(kind="mf", embedding_dim=8, seed=3),
        train=TrainConfig(rounds=25, users_per_round=16, lr=1.0),
        seed=3,
    )


@pytest.fixture()
def tiny_ncf_config():
    """A minutes-scale NCF experiment config for end-to-end tests."""
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.1, seed=3),
        model=ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3),
        train=TrainConfig(rounds=20, users_per_round=16, lr=0.05),
        seed=3,
    )


@pytest.fixture()
def attack_cfg():
    """Default attack knobs used across attack tests."""
    return AttackConfig(name="pieck_uea", malicious_ratio=0.1, mining_rounds=2)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = grad.reshape(-1)
    x_flat = x.reshape(-1)
    for index in range(x_flat.size):
        original = x_flat[index]
        x_flat[index] = original + eps
        upper = f(x)
        x_flat[index] = original - eps
        lower = f(x)
        x_flat[index] = original
        flat[index] = (upper - lower) / (2 * eps)
    return grad
