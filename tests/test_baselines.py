"""Tests for the baseline attacks (FedRecAttack, PipAttack, A-ra, A-hum)."""

import numpy as np
import pytest

from repro.attacks.baselines.fedrecattack import FedRecAttack
from repro.attacks.baselines.interaction import AHum, ARa
from repro.attacks.baselines.pipattack import PipAttack
from repro.config import AttackConfig, TrainConfig
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel
from repro.rng import make_rng


@pytest.fixture()
def cfg():
    return AttackConfig(name="x", malicious_ratio=0.05)


class TestFedRecAttack:
    def test_requires_known_users(self, cfg):
        with pytest.raises(ValueError, match="known user"):
            FedRecAttack(0, np.array([1]), cfg, 10, [], embedding_dim=4)

    def test_uploads_target_gradients(self, cfg):
        model = MFModel(20, 4, seed=0)
        known = [np.array([0, 1]), np.array([2, 3])]
        attack = FedRecAttack(0, np.array([7]), cfg, 20, known, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        np.testing.assert_array_equal(update.item_ids, [7])
        assert update.malicious

    def test_surrogates_fit_known_interactions(self, cfg):
        model = MFModel(20, 4, seed=1)
        known = [np.array([0, 1, 2])]
        attack = FedRecAttack(
            0, np.array([7]), cfg, 20, known, embedding_dim=4, fit_steps=50, fit_lr=0.5
        )
        before = float(
            np.mean(model.item_embeddings[known[0]] @ attack.surrogate_users[0])
        )
        attack.participate(model, TrainConfig(lr=1.0), 0)
        after = float(
            np.mean(model.item_embeddings[known[0]] @ attack.surrogate_users[0])
        )
        assert after > before  # surrogate now "likes" its known items


class TestPipAttack:
    def test_label_shape_enforced(self, cfg):
        with pytest.raises(ValueError, match="entry per item"):
            PipAttack(0, np.array([1]), cfg, 10, np.zeros(5), embedding_dim=4)

    def test_classifier_learns_separable_popularity(self, cfg):
        model = MFModel(40, 4, seed=2)
        # Popular items in one half-space.
        labels = np.zeros(40)
        labels[:10] = 1.0
        model.item_embeddings[:10] += np.array([2.0, 0, 0, 0])
        attack = PipAttack(0, np.array([30]), cfg, 40, labels, embedding_dim=4)
        attack.participate(model, TrainConfig(lr=1.0), 0)
        # Classifier weights should point towards the popular half-space.
        assert attack._weights[0] > 0

    def test_poison_moves_target_towards_popular_class(self, cfg):
        model = MFModel(40, 4, seed=2)
        labels = np.zeros(40)
        labels[:10] = 1.0
        model.item_embeddings[:10] += np.array([3.0, 0, 0, 0])
        attack = PipAttack(0, np.array([30]), cfg, 40, labels, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        moved = model.item_embeddings[30] - 1.0 * update.item_grads[0]
        assert moved[0] > model.item_embeddings[30][0]


class TestARa:
    def test_mf_uploads_no_param_grads(self, cfg):
        model = MFModel(20, 4, seed=3)
        attack = ARa(0, np.array([5]), cfg, 20, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        assert update.param_grads == []
        np.testing.assert_array_equal(update.item_ids, [5])

    def test_ncf_uploads_param_grads(self, cfg):
        model = NCFModel(20, 4, mlp_layers=(8,), seed=3)
        attack = ARa(0, np.array([5]), cfg, 20, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        assert len(update.param_grads) == len(model.interaction_params())

    def test_param_poisoning_restores_model(self, cfg):
        model = NCFModel(20, 4, mlp_layers=(8,), seed=3)
        before = [p.copy() for p in model.interaction_params()]
        ARa(0, np.array([5]), cfg, 20, embedding_dim=4).participate(
            model, TrainConfig(lr=1.0), 0
        )
        for prev, current in zip(before, model.interaction_params()):
            np.testing.assert_array_equal(prev, current)

    def test_poison_promotes_target_for_random_users(self, cfg):
        model = NCFModel(20, 4, mlp_layers=(8,), seed=4)
        attack = ARa(0, np.array([5]), cfg, 20, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=0.1), 0)
        # Apply the poisonous parameter gradients like the server would.
        model.apply_param_update([-0.1 * g for g in update.param_grads])
        model.apply_item_update(update.item_ids, -0.1 * update.item_grads)
        users = make_rng(0).normal(scale=0.1, size=(64, 4))
        items = np.broadcast_to(model.item_embeddings[5], users.shape).copy()
        logits, _ = model.forward(users, items)
        baseline_items = np.broadcast_to(model.item_embeddings[9], users.shape).copy()
        baseline, _ = model.forward(users, baseline_items)
        assert logits.mean() > baseline.mean()


class TestAHum:
    def test_hard_mining_preserves_norms(self, cfg):
        model = MFModel(20, 4, seed=5)
        attack = AHum(0, np.array([5]), cfg, 20, embedding_dim=4)
        rng = make_rng(1)
        users = attack._simulated_users(model, rng)
        raw = ARa(0, np.array([5]), cfg, 20, embedding_dim=4)._simulated_users(
            model, make_rng(1)
        )
        np.testing.assert_allclose(
            np.linalg.norm(users, axis=1), np.linalg.norm(raw, axis=1), rtol=1e-9
        )

    def test_hard_users_dislike_target(self, cfg):
        model = MFModel(20, 4, seed=6)
        model.item_embeddings[5] = np.array([1.0, 1.0, 0.0, 0.0])
        attack = AHum(
            0, np.array([5]), cfg, 20, embedding_dim=4,
            hard_mining_steps=20, hard_mining_lr=0.3,
        )
        rng = make_rng(2)
        hard = attack._simulated_users(model, rng)
        random = ARa(0, np.array([5]), cfg, 20, embedding_dim=4)._simulated_users(
            model, make_rng(2)
        )
        target = model.item_embeddings[5]
        assert (hard @ target).mean() < (random @ target).mean()

    def test_poison_items_enabled(self, cfg):
        model = MFModel(20, 4, seed=7)
        attack = AHum(0, np.array([5]), cfg, 20, embedding_dim=4)
        update = attack.participate(model, TrainConfig(lr=1.0), 0)
        assert update is not None
        np.testing.assert_array_equal(update.item_ids, [5])
