"""Tests for the PIECK-IPE and PIECK-UEA attack clients."""

import numpy as np
import pytest

from repro.attacks.base import bounded_step_gradient, delta_as_gradient, select_target_items
from repro.attacks.pieck_ipe import PieckIPE, ipe_loss_and_grad
from repro.attacks.pieck_uea import PieckUEA
from repro.config import AttackConfig, TrainConfig, replace
from repro.models.mf import MFModel
from repro.rng import make_rng
from tests.conftest import numeric_gradient


class TestDeltaAsGradient:
    def test_roundtrip(self):
        old = np.array([1.0, 2.0])
        new = np.array([0.5, 3.0])
        grad = delta_as_gradient(old, new, server_lr=0.5)
        np.testing.assert_allclose(old - 0.5 * grad, new)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            delta_as_gradient(np.zeros(2), np.ones(2), 0.0)

    def test_bounded_step_caps_move(self):
        old = np.zeros(3)
        new = np.array([10.0, 0.0, 0.0])
        grad = bounded_step_gradient(old, new, server_lr=1.0, max_step=2.0)
        moved = old - grad
        assert np.linalg.norm(moved - old) == pytest.approx(2.0)
        # Direction towards the target preserved.
        assert moved[0] > 0

    def test_bounded_step_noop_within_bound(self):
        old = np.zeros(2)
        new = np.array([0.5, 0.0])
        grad = bounded_step_gradient(old, new, 1.0, max_step=2.0)
        np.testing.assert_allclose(old - grad, new)


class TestTargetSelection:
    def test_prefers_cold_items(self, tiny_dataset):
        rng = make_rng(0)
        targets = select_target_items(tiny_dataset, 2, rng)
        # Targets come from the cold tail: no more popular than the
        # 8 * count coldest item (the fallback pool bound).
        rank_of = tiny_dataset.popularity_rank_of()
        assert (rank_of[targets] >= tiny_dataset.num_items - 8).all()

    def test_zero_popularity_items_chosen_when_available(self):
        from repro.datasets.base import InteractionDataset

        data = InteractionDataset(
            "cold", 2, 10,
            [np.array([0, 1]), np.array([0, 2])],
            np.array([3, 3]),
        )
        targets = select_target_items(data, 2, make_rng(1))
        assert (data.popularity()[targets] == 0).all()

    def test_requested_count(self, tiny_dataset):
        rng = make_rng(1)
        assert len(select_target_items(tiny_dataset, 3, rng)) == 3


class TestIpeLoss:
    def test_gradient_numeric_pcos(self):
        rng = make_rng(2)
        popular = rng.normal(size=(6, 5))
        target = rng.normal(size=5)
        _, grad = ipe_loss_and_grad(target, popular, lam=0.7)
        numeric = numeric_gradient(
            lambda v: ipe_loss_and_grad(v, popular, lam=0.7)[0], target.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_gradient_numeric_pkl(self):
        rng = make_rng(3)
        popular = rng.normal(size=(4, 5))
        target = rng.normal(size=5)
        _, grad = ipe_loss_and_grad(target, popular, metric="pkl")
        numeric = numeric_gradient(
            lambda v: ipe_loss_and_grad(v, popular, metric="pkl")[0], target.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_descending_loss_improves_alignment(self):
        rng = make_rng(4)
        popular = rng.normal(size=(5, 4)) + 2.0
        target = rng.normal(size=4)
        vec = target.copy()
        for _ in range(50):
            _, grad = ipe_loss_and_grad(vec, popular)
            vec -= 0.2 * grad
        before = np.mean(popular @ target / np.linalg.norm(target))
        after = np.mean(popular @ vec / np.linalg.norm(vec))
        assert after > before

    def test_invalid_lambda(self):
        with pytest.raises(ValueError, match="lambda"):
            ipe_loss_and_grad(np.ones(3), np.ones((2, 3)), lam=0.0)

    def test_invalid_metric(self):
        with pytest.raises(ValueError, match="metric"):
            ipe_loss_and_grad(np.ones(3), np.ones((2, 3)), metric="cosine")

    def test_partition_splits_by_sign(self):
        # With one aligned and one anti-aligned popular item, the
        # partitioned loss should still pull towards the aligned one.
        popular = np.array([[1.0, 0.0], [-1.0, 0.0]])
        target = np.array([0.5, 0.5])
        _, grad_partitioned = ipe_loss_and_grad(target, popular, use_partition=True)
        # Without partition, equal weights exactly cancel the cosines.
        _, grad_flat = ipe_loss_and_grad(
            target, popular, use_partition=False, use_weights=False
        )
        assert np.linalg.norm(grad_flat) < np.linalg.norm(grad_partitioned) + 1e-9


def run_attack_lifecycle(attack, model, rounds=6):
    updates = []
    cfg = TrainConfig(lr=1.0)
    for round_idx in range(rounds):
        updates.append(attack.participate(model, cfg, round_idx))
    return updates


class TestPieckLifecycles:
    @pytest.mark.parametrize("cls", [PieckIPE, PieckUEA])
    def test_mining_phase_uploads_nothing(self, cls, attack_cfg):
        model = MFModel(30, 6, seed=0)
        attack = cls(100, np.array([5]), attack_cfg, 30)
        updates = run_attack_lifecycle(attack, model)
        # mining_rounds=2 -> the first two participations only observe;
        # the third completes mining and attacks in the same round
        # (Algorithms 1 and 2 overlap at r-tilde = R-tilde + 1).
        assert updates[0] is None and updates[1] is None
        assert updates[2] is not None and updates[3] is not None

    @pytest.mark.parametrize("cls", [PieckIPE, PieckUEA])
    def test_poison_targets_only(self, cls, attack_cfg):
        model = MFModel(30, 6, seed=0)
        targets = np.array([5, 9])
        attack = cls(100, targets, attack_cfg, 30)
        update = run_attack_lifecycle(attack, model)[-1]
        np.testing.assert_array_equal(np.sort(update.item_ids), targets)
        assert update.malicious

    def test_one_then_copy_duplicates_gradient(self, attack_cfg):
        model = MFModel(30, 6, seed=0)
        # Make both targets share an embedding so copy == recompute.
        model.item_embeddings[9] = model.item_embeddings[5]
        cfg = replace(attack_cfg, multi_target_strategy="one_then_copy")
        attack = PieckIPE(100, np.array([5, 9]), cfg, 30)
        update = run_attack_lifecycle(attack, model)[-1]
        np.testing.assert_allclose(update.item_grads[0], update.item_grads[1])

    def test_uea_raises_target_score_for_popular(self, attack_cfg):
        model = MFModel(30, 6, seed=3)
        # Give popular items large coherent embeddings so mining finds them.
        hot = np.arange(8)
        drift = make_rng(5).normal(size=(8, 6))
        attack = PieckUEA(100, np.array([20]), attack_cfg, 30)
        cfg = TrainConfig(lr=1.0)
        for round_idx in range(8):
            model.item_embeddings[hot] += 0.5 * drift
            update = attack.participate(model, cfg, round_idx)
            if update is not None:
                # Apply the poison like an undefended server would.
                model.apply_item_update(update.item_ids, -cfg.lr * update.item_grads)
        popular_vecs = model.item_embeddings[attack.miner.popular_items()]
        target_vec = model.item_embeddings[20]
        assert float(np.mean(popular_vecs @ target_vec)) > 0.0

    def test_mined_set_excludes_targets(self, attack_cfg):
        model = MFModel(30, 6, seed=0)
        target = 5
        attack = PieckUEA(100, np.array([target]), attack_cfg, 30)
        cfg = TrainConfig(lr=1.0)
        for round_idx in range(4):
            # Target churns the most, as if other attackers poison it.
            model.item_embeddings[target] += 10.0
            attack.participate(model, cfg, round_idx)
        assert target not in attack._popular_excluding_targets()

    def test_participation_scale_splits_team(self, attack_cfg):
        model = MFModel(30, 6, seed=0)
        attack = PieckIPE(100, np.array([5]), attack_cfg, 30)
        attack.team_size = 10
        # Sampled every round -> rate 1.0 -> scale 1/10.
        scales = [attack._participation_scale(r) for r in range(3)]
        assert scales[-1] == pytest.approx(0.1)

    def test_participation_scale_floor_of_one(self, attack_cfg):
        attack = PieckIPE(100, np.array([5]), attack_cfg, 30)
        attack.team_size = 1
        assert attack._participation_scale(0) == 1.0
