"""Tests for loss functions and their analytic gradients."""

import numpy as np

from repro.models.losses import (
    bce_loss_and_grad,
    bpr_loss_and_grad,
    log_sigmoid,
    sigmoid,
)
from tests.conftest import numeric_gradient


class TestSigmoid:
    def test_matches_definition(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x), 1 / (1 + np.exp(-x)), rtol=1e-12)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == 0.0 and out[1] == 1.0
        assert not np.isnan(out).any()

    def test_log_sigmoid_stable(self):
        out = log_sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert np.isfinite(out[0]) is np.True_ or out[0] == -1000.0
        np.testing.assert_allclose(out[1], np.log(0.5))
        np.testing.assert_allclose(out[2], 0.0, atol=1e-12)


class TestBCE:
    def test_loss_matches_manual(self):
        logits = np.array([0.5, -1.0, 2.0])
        labels = np.array([1.0, 0.0, 1.0])
        loss, _ = bce_loss_and_grad(logits, labels)
        probs = sigmoid(logits)
        manual = -np.mean(
            labels * np.log(probs) + (1 - labels) * np.log(1 - probs)
        )
        np.testing.assert_allclose(loss, manual, rtol=1e-10)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=6)
        labels = rng.integers(0, 2, size=6).astype(float)
        _, grad = bce_loss_and_grad(logits, labels)
        numeric = numeric_gradient(
            lambda x: bce_loss_and_grad(x, labels)[0], logits.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_perfect_prediction_small_grad(self):
        logits = np.array([30.0, -30.0])
        labels = np.array([1.0, 0.0])
        loss, grad = bce_loss_and_grad(logits, labels)
        assert loss < 1e-8
        assert np.abs(grad).max() < 1e-8

    def test_shape_mismatch_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            bce_loss_and_grad(np.zeros(3), np.zeros(2))


class TestBPR:
    def test_gradients_numerically(self):
        rng = np.random.default_rng(1)
        pos = rng.normal(size=5)
        neg = rng.normal(size=5)
        _, dpos, dneg = bpr_loss_and_grad(pos, neg)
        num_pos = numeric_gradient(
            lambda x: bpr_loss_and_grad(x, neg)[0], pos.copy()
        )
        num_neg = numeric_gradient(
            lambda x: bpr_loss_and_grad(pos, x)[0], neg.copy()
        )
        np.testing.assert_allclose(dpos, num_pos, atol=1e-6)
        np.testing.assert_allclose(dneg, num_neg, atol=1e-6)

    def test_antisymmetric_gradients(self):
        pos = np.array([1.0, 0.0])
        neg = np.array([0.0, 1.0])
        _, dpos, dneg = bpr_loss_and_grad(pos, neg)
        np.testing.assert_allclose(dpos, -dneg)

    def test_correct_ranking_low_loss(self):
        loss_good, _, _ = bpr_loss_and_grad(np.array([10.0]), np.array([-10.0]))
        loss_bad, _, _ = bpr_loss_and_grad(np.array([-10.0]), np.array([10.0]))
        assert loss_good < 1e-6 < loss_bad

    def test_unpaired_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="paired"):
            bpr_loss_and_grad(np.zeros(3), np.zeros(4))
