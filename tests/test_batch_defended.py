"""Defended fast-path parity suite: loop vs batch, bit for bit.

The batch engine's contract extends to *every* server configuration:
robust aggregators, update filters, the audit log, and the BPR loss
all run on stacked tensors (:class:`repro.federated.UpdateBatch`)
without materialising per-client updates — and must still reproduce
the reference per-client loop exactly.  This suite sweeps every
registry defense x {MF-BCE, NCF-BCE, MF-BPR} x {PIECK-UEA, PIECK-IPE,
no-attack} end to end, plus unit-level parity for each batched
building block (grouped aggregator kernels, batched filters, the
batched audit recorder, UpdateBatch round-tripping).
"""

import numpy as np
import pytest

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
)
from repro.defenses.coordinated import ItemScaleClip
from repro.defenses.registry import DEFENSE_NAMES
from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import Aggregator
from repro.federated.payload import ClientUpdate
from repro.federated.simulation import FederatedSimulation
from repro.federated.update_batch import UpdateBatch

# Defense x model x attack cross-product sweeps, end to end — the
# suite's other slowest file; the marker lets CI legs split them off.
pytestmark = pytest.mark.slow

ATTACKS = ("none", "pieck_uea", "pieck_ipe")

#: (model kind, loss) variants of the sweep; BPR is the supplementary-E
#: protocol that previously fell back to the reference loop wholesale.
VARIANTS = (("mf", "bce"), ("ncf", "bce"), ("mf", "bpr"))


def sweep_config(defense: str, attack: str, kind: str, loss: str) -> ExperimentConfig:
    """A seconds-scale config still exercising mining, poison and defense."""
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.08, seed=11),
        model=ModelConfig(
            kind=kind, embedding_dim=6, mlp_layers=(8,), seed=11
        ),
        train=TrainConfig(
            rounds=7,
            users_per_round=12,
            lr=0.5 if kind == "mf" else 0.05,
            loss=loss,
        ),
        attack=(
            AttackConfig(name=attack, malicious_ratio=0.15, mining_rounds=2)
            if attack != "none"
            else None
        ),
        defense=DefenseConfig(name=defense, assumed_malicious_ratio=0.15),
        seed=11,
    )


def assert_state_identical(a: FederatedSimulation, b: FederatedSimulation) -> None:
    assert np.array_equal(a.model.item_embeddings, b.model.item_embeddings)
    assert np.array_equal(a.user_embedding_matrix(), b.user_embedding_matrix())
    for pa, pb in zip(a.model.interaction_params(), b.model.interaction_params()):
        assert np.array_equal(pa, pb)


# ----------------------------------------------------------------------
# End-to-end sweep
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind,loss", VARIANTS, ids=[f"{k}-{l}" for k, l in VARIANTS])
@pytest.mark.parametrize("attack", ATTACKS)
@pytest.mark.parametrize("defense", DEFENSE_NAMES)
def test_defended_parity(defense, attack, kind, loss):
    config = sweep_config(defense, attack, kind, loss)
    loop = FederatedSimulation(config, engine="loop")
    batch = FederatedSimulation(config, engine="batch")
    for round_idx in range(config.train.rounds):
        loop.run_round(round_idx)
        batch.run_round(round_idx)
    assert_state_identical(loop, batch)
    # The whole sweep must run on the batched server path: no registry
    # defense is allowed to silently materialise per-client updates.
    assert batch.server.materialized_rounds == 0


@pytest.mark.parametrize("defense", ["krum", "norm_bound", "scale_clip"])
def test_defended_audit_records_identical(defense):
    config = sweep_config(defense, "pieck_uea", "mf", "bce")
    loop = FederatedSimulation(config, engine="loop", audit=True)
    batch = FederatedSimulation(config, engine="batch", audit=True)
    for round_idx in range(config.train.rounds):
        loop.run_round(round_idx)
        batch.run_round(round_idx)
    assert_state_identical(loop, batch)
    assert loop.audit_log.records == batch.audit_log.records


def test_custom_filter_falls_back_to_materialised():
    """A filter without ``filter_batch`` still works, via ClientUpdates."""
    config = sweep_config("none", "pieck_uea", "mf", "bce")
    loop = FederatedSimulation(config, engine="loop")
    batch = FederatedSimulation(config, engine="batch")
    loop.server.update_filter = NormBoundFilter(0.0)
    batch.server.update_filter = lambda updates: NormBoundFilter(0.0)(updates)
    for round_idx in range(config.train.rounds):
        loop.run_round(round_idx)
        batch.run_round(round_idx)
    assert_state_identical(loop, batch)
    assert batch.server.materialized_rounds == config.train.rounds


# ----------------------------------------------------------------------
# Grouped aggregator kernels: lane stability
# ----------------------------------------------------------------------

AGGREGATORS = [
    MedianAggregator(),
    TrimmedMeanAggregator(0.2),
    KrumAggregator(0.2),
    MultiKrumAggregator(0.2),
    BulyanAggregator(0.2),
]


@pytest.mark.parametrize("aggregator", AGGREGATORS, ids=lambda a: type(a).__name__)
@pytest.mark.parametrize("count", [1, 2, 3, 4, 9, 40])
def test_aggregate_stacks_lane_identical(aggregator, count):
    """Each lane of a grouped call equals the per-item scalar call."""
    rng = np.random.default_rng(count)
    stacks = rng.normal(size=(13, count, 5))
    batched = aggregator.aggregate_stacks(stacks)
    for lane in range(len(stacks)):
        assert np.array_equal(batched[lane], aggregator.aggregate(stacks[lane]))


def test_aggregate_stacks_param_tensors():
    """Grouped kernels accept arbitrary trailing parameter shapes."""
    rng = np.random.default_rng(0)
    stacks = rng.normal(size=(4, 7, 3, 5))
    for aggregator in AGGREGATORS:
        batched = aggregator.aggregate_stacks(stacks)
        assert batched.shape == (4, 3, 5)
        for lane in range(4):
            assert np.array_equal(batched[lane], aggregator.aggregate(stacks[lane]))


def test_default_aggregate_stacks_loops():
    """Third-party aggregators fall back to the per-group loop."""

    class LastWins(Aggregator):
        def aggregate(self, grads):
            return self._check(grads)[-1]

    stacks = np.arange(24, dtype=float).reshape(2, 3, 4)
    out = LastWins().aggregate_stacks(stacks)
    assert np.array_equal(out, stacks[:, -1])


# ----------------------------------------------------------------------
# Batched filters vs the reference update filters
# ----------------------------------------------------------------------


def random_round(rng, clients=9, num_items=30, dim=4, with_params=False, scale=1.0):
    updates = []
    for user_id in range(clients):
        n = int(rng.integers(1, 8))
        ids = np.sort(rng.choice(num_items, size=n, replace=False))
        params = (
            [scale * rng.normal(size=(3, 2)), scale * rng.normal(size=2)]
            if with_params and user_id % 2 == 0
            else []
        )
        updates.append(
            ClientUpdate(
                user_id=user_id,
                item_ids=ids,
                item_grads=scale * rng.normal(size=(n, dim)),
                param_grads=params,
                malicious=bool(user_id % 3 == 0),
            )
        )
    return updates


def assert_updates_equal(expected, got):
    assert len(expected) == len(got)
    for e, g in zip(expected, got):
        assert e.user_id == g.user_id
        assert e.malicious == g.malicious
        assert np.array_equal(e.item_ids, g.item_ids)
        assert np.array_equal(e.item_grads, g.item_grads)
        assert len(e.param_grads) == len(g.param_grads)
        for pe, pg in zip(e.param_grads, g.param_grads):
            assert np.array_equal(pe, pg)


@pytest.mark.parametrize("threshold", [0.0, 1.5])
@pytest.mark.parametrize("with_params", [False, True])
def test_norm_bound_filter_batch_matches_reference(threshold, with_params):
    updates = random_round(
        np.random.default_rng(3), with_params=with_params, scale=2.0
    )
    reference = NormBoundFilter(threshold)(updates)
    batch = NormBoundFilter(threshold).filter_batch(UpdateBatch.from_updates(updates))
    assert_updates_equal(list(reference), batch.to_updates())


def test_scale_clip_filter_batch_matches_reference():
    rng = np.random.default_rng(4)
    updates = random_round(rng)
    # One flooding attacker with oversized rows.
    updates.append(
        ClientUpdate(
            user_id=99,
            item_ids=np.array([1, 5]),
            item_grads=200.0 * rng.normal(size=(2, 4)),
            malicious=True,
        )
    )
    reference_filter = ItemScaleClip(factor=0.5, history=0.5)
    batch_filter = ItemScaleClip(factor=0.5, history=0.5)
    for _ in range(3):  # EMA state must advance identically across rounds
        reference = reference_filter(updates)
        filtered = batch_filter.filter_batch(UpdateBatch.from_updates(updates))
        assert_updates_equal(list(reference), filtered.to_updates())
    assert reference_filter._smoothed_median == batch_filter._smoothed_median


def test_scale_clip_include_params_uses_counted_fallback():
    """include_params needs whole-tensor norms: no filter_batch exposed,
    so the server takes its *counted* materialised reference path."""
    assert getattr(
        ItemScaleClip(include_params=True), "filter_batch", None
    ) is None
    config = sweep_config("none", "pieck_uea", "ncf", "bce")
    loop = FederatedSimulation(config, engine="loop")
    batch = FederatedSimulation(config, engine="batch")
    loop.server.update_filter = ItemScaleClip(
        factor=0.5, history=0.0, include_params=True
    )
    batch.server.update_filter = ItemScaleClip(
        factor=0.5, history=0.0, include_params=True
    )
    for round_idx in range(config.train.rounds):
        loop.run_round(round_idx)
        batch.run_round(round_idx)
    assert_state_identical(loop, batch)
    assert batch.server.materialized_rounds == config.train.rounds


# ----------------------------------------------------------------------
# Batched audit recorder
# ----------------------------------------------------------------------


def test_record_batch_matches_record():
    from repro.federated.audit import ServerAuditLog

    rng = np.random.default_rng(6)
    reference, batched = ServerAuditLog(), ServerAuditLog()
    for round_idx in range(3):
        updates = random_round(rng, clients=7)
        reference.record(updates)
        batched.record_batch(UpdateBatch.from_updates(updates))
    assert reference.rounds_recorded == batched.rounds_recorded
    assert reference.records == batched.records


# ----------------------------------------------------------------------
# UpdateBatch structure
# ----------------------------------------------------------------------


class TestUpdateBatch:
    def test_roundtrip(self):
        updates = random_round(np.random.default_rng(7), with_params=True)
        batch = UpdateBatch.from_updates(updates)
        assert_updates_equal(updates, batch.to_updates())

    def test_client_total_norms_match_updates(self):
        updates = random_round(np.random.default_rng(8), with_params=True)
        batch = UpdateBatch.from_updates(updates)
        norms = batch.client_total_norms()
        for update, norm in zip(updates, norms):
            assert norm == update.total_norm

    def test_scaled_by_client_identity_is_bitwise_noop(self):
        updates = random_round(np.random.default_rng(9), with_params=True)
        batch = UpdateBatch.from_updates(updates)
        scaled = batch.scaled_by_client(np.ones(batch.num_clients))
        assert np.array_equal(scaled.item_grads, batch.item_grads)
        for a, b in zip(scaled.param_stacks, batch.param_stacks):
            assert np.array_equal(a, b)

    def test_empty(self):
        batch = UpdateBatch.from_updates([])
        assert batch.num_clients == 0
        assert batch.to_updates() == []
