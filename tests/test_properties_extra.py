"""Property-based tests for the modules added on top of the core stack:

ranking-metric invariants, the pseudo-user refiner, the coordinated
defense clip, and the seed-sweep summaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks.refinement import PseudoUserRefiner
from repro.defenses.coordinated import ItemScaleClip
from repro.experiments.runner import Cell
from repro.experiments.stability import SeedSweep
from repro.federated.payload import ClientUpdate
from repro.metrics.ranking import exposure_ratio_at_k, top_k_items
from repro.models.mf import MFModel

_finite = st.floats(-50.0, 50.0, allow_nan=False)


class TestRankingMetricProperties:
    @given(
        arrays(np.float64, (6, 12), elements=_finite),
        st.integers(1, 8),
        st.integers(0, 11),
    )
    @settings(max_examples=60, deadline=None)
    def test_exposure_ratio_in_unit_interval(self, scores, k, target):
        mask = np.zeros_like(scores, dtype=bool)
        er = exposure_ratio_at_k(scores, mask, np.array([target]), k)
        assert 0.0 <= er <= 1.0

    @given(arrays(np.float64, (5, 10), elements=_finite), st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_exposure_monotone_in_k(self, scores, target):
        mask = np.zeros_like(scores, dtype=bool)
        targets = np.array([target])
        ers = [
            exposure_ratio_at_k(scores, mask, targets, k) for k in (1, 3, 5, 10)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(ers, ers[1:]))

    @given(arrays(np.float64, (4, 9), elements=_finite), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_top_k_scores_dominate_rest(self, scores, k):
        mask = np.zeros_like(scores, dtype=bool)
        top = top_k_items(scores, mask, k)
        for user in range(scores.shape[0]):
            chosen = set(top[user].tolist())
            rest = [j for j in range(scores.shape[1]) if j not in chosen]
            if rest:
                assert scores[user, top[user]].min() >= max(
                    scores[user, rest]
                ) - 1e-12


class TestRefinerProperties:
    @given(
        st.integers(2, 6),     # popular set size
        st.integers(1, 4),     # pseudo-user count
        st.integers(0, 100),   # seed
    )
    @settings(max_examples=25, deadline=None)
    def test_refined_vectors_always_finite(self, num_popular, count, seed):
        model = MFModel(20, 6, init_scale=0.2, seed=seed)
        refiner = PseudoUserRefiner(
            20, 6, np.arange(num_popular), count=count, steps=15, seed=seed
        )
        vecs = refiner.refine(model)
        assert vecs.shape == (count, 6)
        assert np.isfinite(vecs).all()

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_refinement_reduces_profile_loss(self, seed):
        """Refinement must improve its own objective: populars score
        higher than non-populars after refining."""
        model = MFModel(30, 8, init_scale=0.3, seed=seed)
        popular = np.arange(6)
        refiner = PseudoUserRefiner(30, 8, popular, count=3, steps=60, seed=seed)
        vecs = refiner.refine(model)
        pop_scores = vecs @ model.item_embeddings[popular].T
        other_scores = vecs @ model.item_embeddings[6:].T
        assert pop_scores.mean() > other_scores.mean()


class TestScaleClipProperties:
    @given(
        st.lists(
            st.floats(0.01, 5.0), min_size=3, max_size=10
        ),
        # Idempotence requires factor >= 1: a contractive factor (< 1)
        # lowers the median itself, so re-clipping keeps shrinking.
        st.floats(1.0, 4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_clip_is_idempotent(self, norms, factor):
        updates = [
            ClientUpdate(
                user_id=i,
                item_ids=np.array([0, 1]),
                item_grads=np.array([[n, 0.0], [0.0, n]]),
            )
            for i, n in enumerate(norms)
        ]
        clip = ItemScaleClip(factor=factor, history=0.0)
        once = clip(updates)
        # Re-clipping the already-clipped round must change nothing
        # (same median, all rows already under the bound).
        again = ItemScaleClip(factor=factor, history=0.0)(once)
        for a, b in zip(once, again):
            assert np.allclose(a.item_grads, b.item_grads)

    @given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_clip_preserves_row_directions(self, norms):
        rng = np.random.default_rng(0)
        directions = rng.normal(0, 1, (len(norms), 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        updates = [
            ClientUpdate(
                user_id=i,
                item_ids=np.array([0]),
                item_grads=(n * d)[None, :],
            )
            for i, (n, d) in enumerate(zip(norms, directions))
        ]
        clipped = ItemScaleClip(factor=1.0, history=0.0)(updates)
        for original_dir, update in zip(directions, clipped):
            row = update.item_grads[0]
            norm = np.linalg.norm(row)
            assert norm > 0
            assert np.allclose(row / norm, original_dir, atol=1e-9)


class TestSeedSweepProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_between_min_and_max(self, pairs):
        cells = tuple(Cell(er=e, hr=h) for e, h in pairs)
        sweep = SeedSweep(seeds=tuple(range(len(cells))), cells=cells)
        assert sweep.er_min - 1e-9 <= sweep.er_mean <= sweep.er_max + 1e-9
        assert sweep.er_std >= 0.0
        assert sweep.hr_std >= 0.0
