"""Tests for ER@K and HR@K ranking metrics."""

import numpy as np
import pytest

from repro.datasets.base import InteractionDataset
from repro.metrics.ranking import (
    exposure_ratio_at_k,
    hit_ratio_at_k,
    sample_eval_negatives,
    top_k_items,
)


def small_dataset():
    train_pos = [np.array([0, 1]), np.array([2, 3])]
    test_items = np.array([4, 5])
    return InteractionDataset("m", 2, 6, train_pos, test_items)


class TestTopK:
    def test_excludes_train_items(self):
        scores = np.array([[9.0, 8.0, 1.0, 2.0, 3.0, 0.0]])
        mask = np.zeros((1, 6), dtype=bool)
        mask[0, [0, 1]] = True
        top = top_k_items(scores, mask, 3)
        assert set(top[0].tolist()) == {2, 3, 4}

    def test_ordering_descending(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        mask = np.zeros((1, 4), dtype=bool)
        np.testing.assert_array_equal(top_k_items(scores, mask, 3)[0], [1, 3, 2])

    def test_k_larger_than_items(self):
        scores = np.array([[1.0, 2.0]])
        mask = np.zeros((1, 2), dtype=bool)
        assert top_k_items(scores, mask, 10).shape == (1, 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            top_k_items(np.zeros((1, 3)), np.zeros((1, 4), dtype=bool), 2)


class TestExposureRatio:
    def test_full_exposure(self):
        scores = np.zeros((3, 10))
        scores[:, 7] = 10.0
        mask = np.zeros((3, 10), dtype=bool)
        assert exposure_ratio_at_k(scores, mask, np.array([7]), 1) == 1.0

    def test_zero_exposure(self):
        scores = np.zeros((3, 10))
        scores[:, 7] = -10.0
        mask = np.zeros((3, 10), dtype=bool)
        assert exposure_ratio_at_k(scores, mask, np.array([7]), 3) == 0.0

    def test_interacted_users_excluded(self):
        # Both users would rank the target first, but user 0 already
        # interacted with it, so only user 1 counts (Eq. 3's U_j').
        scores = np.zeros((2, 5))
        scores[:, 3] = 10.0
        mask = np.zeros((2, 5), dtype=bool)
        mask[0, 3] = True
        assert exposure_ratio_at_k(scores, mask, np.array([3]), 2) == 1.0

    def test_averaged_over_targets(self):
        scores = np.zeros((2, 6))
        scores[:, 1] = 10.0  # target 1 always exposed
        scores[:, 2] = -10.0  # target 2 never exposed
        mask = np.zeros((2, 6), dtype=bool)
        value = exposure_ratio_at_k(scores, mask, np.array([1, 2]), 1)
        assert value == pytest.approx(0.5)

    def test_no_targets_rejected(self):
        with pytest.raises(ValueError, match="target"):
            exposure_ratio_at_k(np.zeros((1, 3)), np.zeros((1, 3), dtype=bool), np.array([]), 1)


class TestEvalNegatives:
    def test_negatives_avoid_train_and_test(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        for user in range(2):
            banned = data.train_set(user) | {int(data.test_items[user])}
            assert not set(negatives[user].tolist()) & banned

    def test_deterministic(self):
        data = small_dataset()
        a = sample_eval_negatives(data, 3, seed=1)
        b = sample_eval_negatives(data, 3, seed=1)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_count_capped_by_pool(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 99, seed=0)
        assert all(len(n) == 3 for n in negatives)  # 6 items - 2 train - 1 test


class TestHitRatio:
    def test_perfect_model(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        scores[0, 4] = 5.0
        scores[1, 5] = 5.0
        assert hit_ratio_at_k(scores, data, negatives, 1) == 1.0

    def test_worst_model(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        scores[0, 4] = -5.0
        scores[1, 5] = -5.0
        assert hit_ratio_at_k(scores, data, negatives, 3) == 0.0

    def test_constant_scores_not_spuriously_perfect(self):
        # A degenerate constant-output model must not get HR = 1.0;
        # ties count half a loss each.
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        assert hit_ratio_at_k(scores, data, negatives, 1) == 0.0

    def test_users_without_test_item_skipped(self):
        train_pos = [np.array([0]), np.array([1])]
        test_items = np.array([2, -1])
        data = InteractionDataset("m", 2, 4, train_pos, test_items)
        negatives = sample_eval_negatives(data, 2, seed=0)
        scores = np.zeros((2, 4))
        scores[0, 2] = 1.0
        assert hit_ratio_at_k(scores, data, negatives, 1) == 1.0
