"""Tests for the MF and NCF recommender models."""

import numpy as np
import pytest

from repro.models.base import build_model
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel
from repro.rng import make_rng
from tests.conftest import numeric_gradient


class TestFactory:
    def test_builds_mf(self):
        assert isinstance(build_model("mf", 10, 4), MFModel)

    def test_builds_ncf(self):
        model = build_model("ncf", 10, 4, mlp_layers=(8,))
        assert isinstance(model, NCFModel)
        assert len(model.interaction_params()) == 3  # W1, b1, h

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            build_model("gnn", 10, 4)


class TestMFModel:
    def test_forward_is_dot_product(self):
        model = MFModel(20, 4, seed=0)
        rng = make_rng(1)
        user = rng.normal(size=4)
        items = model.item_embeddings[:5]
        logits, _ = model.forward(user, items)
        np.testing.assert_allclose(logits, items @ user)

    def test_no_interaction_params(self):
        assert MFModel(5, 3).interaction_params() == []

    def test_backward_exact(self):
        model = MFModel(20, 4, seed=0)
        rng = make_rng(2)
        user = rng.normal(size=4)
        items = model.item_embeddings[:3]
        dlogits = rng.normal(size=3)
        _, cache = model.forward(user, items)
        bundle = model.backward(cache, dlogits)
        np.testing.assert_allclose(bundle.items, dlogits[:, None] * user)
        np.testing.assert_allclose(
            bundle.users.sum(axis=0), dlogits @ items
        )

    def test_score_matrix_consistent_with_forward(self):
        model = MFModel(10, 4, seed=3)
        users = make_rng(4).normal(size=(3, 4))
        scores = model.score_matrix(users)
        for u in range(3):
            logits, _ = model.forward(users[u], model.item_embeddings)
            np.testing.assert_allclose(scores[u], logits)

    def test_batched_user_vectors(self):
        model = MFModel(10, 4, seed=5)
        users = make_rng(6).normal(size=(4, 4))
        items = model.item_embeddings[:4]
        logits, _ = model.forward(users, items)
        np.testing.assert_allclose(logits, np.einsum("nd,nd->n", users, items))

    def test_misaligned_batch_rejected(self):
        model = MFModel(10, 4)
        with pytest.raises(ValueError, match="align"):
            model.forward(np.zeros((3, 4)), model.item_embeddings[:5])


class TestNCFModel:
    def make_model(self):
        return NCFModel(12, 4, mlp_layers=(8, 4), seed=7)

    def test_user_item_gradients_numeric(self):
        model = self.make_model()
        rng = make_rng(8)
        user = rng.normal(size=4)
        items = model.item_embeddings[:3].copy()
        dlogits = rng.normal(size=3)

        _, cache = model.forward(user, items)
        bundle = model.backward(cache, dlogits)

        def loss_of_user(u):
            logits, _ = model.forward(np.broadcast_to(u, items.shape).copy(), items)
            return float(logits @ dlogits)

        def loss_of_items(v):
            logits, _ = model.forward(np.broadcast_to(user, v.shape).copy(), v)
            return float(logits @ dlogits)

        numeric_user = numeric_gradient(
            lambda u: loss_of_user(u), user.copy()
        )
        np.testing.assert_allclose(bundle.users.sum(axis=0), numeric_user, atol=1e-5)
        numeric_items = numeric_gradient(loss_of_items, items.copy())
        np.testing.assert_allclose(bundle.items, numeric_items, atol=1e-5)

    def test_param_gradients_flow(self):
        model = self.make_model()
        user = make_rng(9).normal(size=4)
        items = model.item_embeddings[:4]
        _, cache = model.forward(user, items)
        bundle = model.backward(cache, np.ones(4))
        assert len(bundle.params) == len(model.interaction_params())
        assert any(np.abs(g).sum() > 0 for g in bundle.params)

    def test_score_matrix_consistent(self):
        model = self.make_model()
        users = make_rng(10).normal(size=(2, 4))
        scores = model.score_matrix(users)
        assert scores.shape == (2, 12)
        logits, _ = model.forward(
            np.broadcast_to(users[0], model.item_embeddings.shape).copy(),
            model.item_embeddings,
        )
        np.testing.assert_allclose(scores[0], logits)

    def test_apply_param_update(self):
        model = self.make_model()
        before = [p.copy() for p in model.interaction_params()]
        deltas = [np.ones_like(p) for p in before]
        model.apply_param_update(deltas)
        for prev, current in zip(before, model.interaction_params()):
            np.testing.assert_allclose(current, prev + 1.0)

    def test_apply_param_update_count_mismatch(self):
        model = self.make_model()
        with pytest.raises(ValueError, match="deltas"):
            model.apply_param_update([np.zeros(1)])


class TestItemUpdates:
    def test_apply_item_update_accumulates_duplicates(self):
        model = MFModel(6, 3, seed=1)
        before = model.item_embeddings[2].copy()
        ids = np.array([2, 2])
        deltas = np.ones((2, 3))
        model.apply_item_update(ids, deltas)
        np.testing.assert_allclose(model.item_embeddings[2], before + 2.0)

    def test_snapshot_is_a_copy(self):
        model = MFModel(6, 3, seed=1)
        snap = model.snapshot_items()
        model.item_embeddings[0, 0] += 5.0
        assert snap[0, 0] != model.item_embeddings[0, 0]
