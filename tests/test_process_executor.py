"""Multi-process round executor: the bit-identity contract at scale.

The contract: routing benign round computation through
:class:`~repro.federated.batch_engine.ProcessRoundExecutor` (forked
workers, each attached to its shards of the shared-memory store) is a
pure throughput knob — every trajectory is bit-identical to the dense
single-process reference, across attacks x defenses x models x kernel
backends, through worker crashes, and across checkpoint/resume in
either direction (dense checkpoint resumed sharded and vice versa).

Also here: the combinations the executor must reject *loudly* instead
of silently degrading — too few workers, a dense store, client-side
regularization, the loop engine, asynchrony.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import numpy as np
import pytest

from repro import kernels
from repro.config import (
    AsyncConfig,
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    ShardingConfig,
    TrainConfig,
)
from repro.federated.batch_engine import ProcessRoundExecutor
from repro.federated.shards import (
    ShardedStateStore,
    list_repro_segments,
    shared_memory_available,
)
from repro.federated.simulation import FederatedSimulation
from repro.federated.state import ClientStateStore
from repro.kernels import NativeKernelsUnavailable

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="/dev/shm not available"
)

try:
    NATIVE = kernels.resolve("native")
    NATIVE_ERROR = None
except NativeKernelsUnavailable as exc:  # pragma: no cover - CI has a toolchain
    NATIVE = None
    NATIVE_ERROR = str(exc)

needs_native = pytest.mark.skipif(
    NATIVE is None, reason=f"native backend unavailable: {NATIVE_ERROR}"
)

KERNEL_BACKENDS = ["numpy"] + (["native"] if NATIVE is not None else [])

SHARDED = ShardingConfig(num_shards=4, round_workers=2)


def sweep_config(
    *,
    kind: str = "mf",
    attack: str = "pieck_uea",
    defense: str = "norm_bound",
    sharding: ShardingConfig = ShardingConfig(),
    kernel: str = "numpy",
    lr_range: tuple[float, float] | None = None,
    rounds: int = 6,
    asynchrony: AsyncConfig = AsyncConfig(),
) -> ExperimentConfig:
    """Seconds-scale config still exercising mining, poison, defense."""
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.08, seed=11),
        model=ModelConfig(kind=kind, embedding_dim=6, mlp_layers=(8,), seed=11),
        train=TrainConfig(
            rounds=rounds,
            users_per_round=12,
            lr=0.5 if kind == "mf" else 0.05,
            eval_every=0,
            kernels=kernel,
            client_lr_range=lr_range,
        ),
        attack=(
            AttackConfig(name=attack, malicious_ratio=0.15, mining_rounds=2)
            if attack != "none"
            else None
        ),
        defense=DefenseConfig(name=defense, assumed_malicious_ratio=0.15),
        sharding=sharding,
        asynchrony=asynchrony,
        seed=11,
    )


def run_sim(config: ExperimentConfig, *, kill_worker_at: int | None = None):
    """Run every round; returns the final-state dict for comparison."""
    with FederatedSimulation(config) as sim:
        for round_idx in range(config.train.rounds):
            if round_idx == kill_worker_at:
                victim = sim.executor._pool[0].process
                os.kill(victim.pid, signal.SIGKILL)
                victim.join()
            sim.run_round(round_idx)
        return {
            "items": sim.model.item_embeddings.copy(),
            "users": sim.user_embedding_matrix().copy(),
            "params": [p.copy() for p in sim.model.interaction_params()],
            "process_rounds": (
                sim._batch_engine.process_rounds if sim.executor else 0
            ),
            "respawns": sim.executor.respawns if sim.executor else 0,
        }


def assert_identical(a: dict, b: dict) -> None:
    assert a["items"].tobytes() == b["items"].tobytes()
    assert a["users"].tobytes() == b["users"].tobytes()
    for pa, pb in zip(a["params"], b["params"]):
        assert pa.tobytes() == pb.tobytes()


# ----------------------------------------------------------------------
# Single- vs multi-process parity
# ----------------------------------------------------------------------


class TestExecutorParity:
    def test_fast_leg_with_client_lr_range(self):
        """The everyday leg: attack + defense + per-client rates."""
        dense = run_sim(sweep_config(lr_range=(0.05, 0.5)))
        multi = run_sim(
            sweep_config(lr_range=(0.05, 0.5), sharding=SHARDED)
        )
        assert multi["process_rounds"] == 6, "a round fell back in-process"
        assert multi["respawns"] == 0
        assert_identical(dense, multi)

    @pytest.mark.slow
    @pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
    @pytest.mark.parametrize("kind", ["mf", "ncf"])
    @pytest.mark.parametrize("defense", ["none", "norm_bound", "median", "krum"])
    @pytest.mark.parametrize("attack", ["none", "pieck_uea", "pieck_ipe"])
    def test_cross_product_parity(self, attack, defense, kind, kernel):
        dense = run_sim(
            sweep_config(kind=kind, attack=attack, defense=defense, kernel=kernel)
        )
        multi = run_sim(
            sweep_config(
                kind=kind,
                attack=attack,
                defense=defense,
                kernel=kernel,
                sharding=SHARDED,
            )
        )
        assert multi["process_rounds"] == 6
        assert_identical(dense, multi)

    def test_mmap_backend_parity(self):
        """shared_memory=False: fork-inherited anonymous mappings."""
        dense = run_sim(sweep_config())
        multi = run_sim(
            sweep_config(
                sharding=ShardingConfig(
                    num_shards=4, round_workers=2, shared_memory=False
                )
            )
        )
        assert multi["process_rounds"] == 6
        assert_identical(dense, multi)

    def test_sharded_single_process_parity(self):
        """Sharding without workers: pure store re-layout."""
        dense = run_sim(sweep_config())
        sharded = run_sim(
            sweep_config(sharding=ShardingConfig(num_shards=3))
        )
        assert sharded["process_rounds"] == 0
        assert_identical(dense, sharded)

    def test_no_segments_leak_after_close(self):
        before = {r["name"] for r in list_repro_segments()}
        run_sim(sweep_config(sharding=SHARDED, rounds=2))
        after = {r["name"] for r in list_repro_segments()}
        assert after - before == set()


# ----------------------------------------------------------------------
# Chaos: a SIGKILLed worker must not change the trajectory
# ----------------------------------------------------------------------


class TestChaos:
    def test_killed_worker_respawns_bit_identical(self):
        dense = run_sim(sweep_config())
        chaos = run_sim(sweep_config(sharding=SHARDED), kill_worker_at=3)
        assert chaos["respawns"] >= 1, "SIGKILL was absorbed silently"
        assert chaos["process_rounds"] == 6
        assert_identical(dense, chaos)


# ----------------------------------------------------------------------
# Loud rejections — never a silent fallback
# ----------------------------------------------------------------------


class TestGuards:
    def _sharded_store(self, sim_cfg=None, **store_kwargs):
        cfg = sim_cfg or sweep_config()
        from repro.datasets.loaders import load_dataset

        dataset = load_dataset(cfg.dataset)
        return dataset, ShardedStateStore.build(
            dataset.train_pos, dataset.num_items, 6, seed=11,
            num_shards=4, **store_kwargs,
        )

    def test_single_worker_rejected(self):
        with FederatedSimulation(sweep_config(sharding=SHARDED)) as sim:
            with pytest.raises(ValueError, match="num_workers"):
                ProcessRoundExecutor(
                    sim.model, sim.config.train, 11, sim.state, 1
                )

    def test_dense_store_rejected(self):
        cfg = sweep_config()
        with FederatedSimulation(cfg) as sim:
            assert isinstance(sim.state, ClientStateStore)
            with pytest.raises(ValueError, match="dense"):
                ProcessRoundExecutor(sim.model, cfg.train, 11, sim.state, 2)

    def test_regularized_store_rejected(self):
        cfg = sweep_config()
        dataset, store = self._sharded_store(
            cfg, regularizer_factory=lambda: object()
        )
        try:
            with FederatedSimulation(cfg, dataset) as sim:
                with pytest.raises(ValueError, match="regulariz"):
                    ProcessRoundExecutor(sim.model, cfg.train, 11, store, 2)
        finally:
            store.close()

    def test_regularization_defense_rejected_at_simulation(self):
        with pytest.raises(ValueError, match="regulariz"):
            FederatedSimulation(
                sweep_config(defense="regularization", sharding=SHARDED)
            )

    def test_loop_engine_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            FederatedSimulation(
                sweep_config(sharding=SHARDED), engine="loop"
            )

    def test_asynchrony_rejected(self):
        with pytest.raises(ValueError, match="asynchrony"):
            FederatedSimulation(
                sweep_config(
                    sharding=SHARDED, asynchrony=AsyncConfig(enabled=True)
                )
            )

    def test_workers_capped_at_shard_count(self):
        cfg = sweep_config(
            sharding=ShardingConfig(num_shards=2, round_workers=8)
        )
        with FederatedSimulation(cfg) as sim:
            assert sim.executor.num_workers == 2


# ----------------------------------------------------------------------
# Checkpoint/resume bit-identity with the sharded store
# ----------------------------------------------------------------------


def _final_state(sim: FederatedSimulation, result) -> dict:
    return {
        "exposure": result.exposure,
        "hit_ratio": result.hit_ratio,
        "rounds_run": result.rounds_run,
        "items": sim.model.item_embeddings.copy(),
        "users": sim.user_embedding_matrix().copy(),
        "params": [p.copy() for p in sim.model.interaction_params()],
        "history": result.history,
    }


def _assert_final_identical(a: dict, b: dict) -> None:
    assert a["exposure"] == b["exposure"]
    assert a["hit_ratio"] == b["hit_ratio"]
    assert a["rounds_run"] == b["rounds_run"]
    assert a["items"].tobytes() == b["items"].tobytes()
    assert a["users"].tobytes() == b["users"].tobytes()
    for pa, pb in zip(a["params"], b["params"]):
        assert pa.tobytes() == pb.tobytes()
    assert a["history"] == b["history"]


class TestCheckpointBitIdentity:
    def _reference(self, cfg):
        with FederatedSimulation(cfg) as sim:
            return _final_state(sim, sim.run())

    @pytest.mark.parametrize("stop_after", [2, 3, 5])
    def test_resume_at_every_boundary(self, tmp_path, stop_after):
        cfg = sweep_config(rounds=6, sharding=SHARDED)
        ref = self._reference(sweep_config(rounds=6))
        ckpt_dir = str(tmp_path / f"ckpt-{stop_after}")
        with FederatedSimulation(cfg) as first:
            first.run(
                rounds=stop_after, checkpoint_dir=ckpt_dir, checkpoint_every=1
            )
        with FederatedSimulation(cfg) as resumed:
            result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=1)
            state = _final_state(resumed, result)
        _assert_final_identical(state, ref)

    def test_dense_checkpoint_resumes_sharded(self, tmp_path):
        """The digest excludes sharding: cross-restore must work."""
        ref = self._reference(sweep_config(rounds=6))
        ckpt_dir = str(tmp_path / "ckpt")
        with FederatedSimulation(sweep_config(rounds=6)) as dense_first:
            dense_first.run(
                rounds=3, checkpoint_dir=ckpt_dir, checkpoint_every=3
            )
        cfg = sweep_config(rounds=6, sharding=SHARDED)
        with FederatedSimulation(cfg) as resumed:
            result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=3)
            state = _final_state(resumed, result)
        _assert_final_identical(state, ref)

    def test_sharded_checkpoint_resumes_dense(self, tmp_path):
        ref = self._reference(sweep_config(rounds=6))
        ckpt_dir = str(tmp_path / "ckpt")
        cfg = sweep_config(rounds=6, sharding=SHARDED)
        with FederatedSimulation(cfg) as sharded_first:
            sharded_first.run(
                rounds=3, checkpoint_dir=ckpt_dir, checkpoint_every=3
            )
        with FederatedSimulation(sweep_config(rounds=6)) as resumed:
            result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=3)
            state = _final_state(resumed, result)
        _assert_final_identical(state, ref)

    def test_config_digest_ignores_sharding(self):
        dense_cfg = sweep_config()
        sharded_cfg = sweep_config(sharding=SHARDED)
        with FederatedSimulation(dense_cfg) as dense:
            with FederatedSimulation(sharded_cfg) as sharded:
                assert dense._config_digest() == sharded._config_digest()

    def test_process_rounds_counter_survives_resume(self, tmp_path):
        cfg = sweep_config(rounds=6, sharding=SHARDED)
        ckpt_dir = str(tmp_path / "ckpt")
        with FederatedSimulation(cfg) as first:
            first.run(rounds=3, checkpoint_dir=ckpt_dir, checkpoint_every=3)
            assert first._batch_engine.process_rounds == 3
        with FederatedSimulation(cfg) as resumed:
            resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=3)
            assert resumed._batch_engine.process_rounds == 6

    @needs_native
    def test_native_kernel_resume_sharded(self, tmp_path):
        cfg = sweep_config(rounds=6, kernel="native", sharding=SHARDED)
        ref = self._reference(sweep_config(rounds=6, kernel="native"))
        ckpt_dir = str(tmp_path / "ckpt")
        with FederatedSimulation(cfg) as first:
            first.run(rounds=4, checkpoint_dir=ckpt_dir, checkpoint_every=2)
        with FederatedSimulation(cfg) as resumed:
            result = resumed.run(checkpoint_dir=ckpt_dir, checkpoint_every=2)
            state = _final_state(resumed, result)
        _assert_final_identical(state, ref)
