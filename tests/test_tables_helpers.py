"""Tests for experiment-table helpers and profile utilities."""

import numpy as np

from repro.analysis.poison_proportion import poison_proportion_profile
from repro.experiments.tables import (
    TABLE3_ATTACKS,
    TABLE4_DEFENSES,
    _attack_label,
    _defense_label,
)


class TestLabels:
    def test_attack_labels_cover_table3(self):
        labels = [_attack_label(a) for a in TABLE3_ATTACKS]
        assert labels == [
            "NoAttack", "FedRecA", "PipA", "A-ra", "A-hum",
            "PIECK-IPE", "PIECK-UEA",
        ]

    def test_defense_labels_cover_table4(self):
        labels = [_defense_label(d) for d in TABLE4_DEFENSES]
        assert labels[0] == "NoDefense"
        assert labels[-1] == "ours"
        assert "Median" in labels and "Bulyan" in labels

    def test_unknown_label_passthrough(self):
        assert _attack_label("custom") == "custom"
        assert _defense_label("custom") == "custom"

    def test_regularization_listed_last_in_table4(self):
        # The paper's table shows "ours" as the final row.
        assert TABLE4_DEFENSES[-1] == "regularization"


class TestPoisonProfile:
    def test_default_covers_all_items(self, tiny_dataset):
        profile = poison_proportion_profile(tiny_dataset, 0.05)
        assert profile.shape == (tiny_dataset.num_items,)
        assert ((profile >= 0.0) & (profile <= 1.0)).all()

    def test_colder_items_have_higher_share(self, tiny_dataset):
        ranking = tiny_dataset.popularity_ranking()
        hot, cold = int(ranking[0]), int(ranking[-1])
        profile = poison_proportion_profile(
            tiny_dataset, 0.05, items=np.array([hot, cold])
        )
        assert profile[1] > profile[0]
