"""Tests for the client-side regularization defense (Section V-B)."""

import numpy as np
import pytest

from repro.config import DefenseConfig
from repro.defenses.regularization import (
    ClientRegularizer,
    exponential_rank_weights,
    re1_value,
    re2_value,
)
from repro.rng import make_rng
from tests.conftest import numeric_gradient


def ready_regularizer(num_items=12, dim=4, beta=0.5, gamma=0.5, num_popular=3, seed=0):
    """A regularizer fed enough snapshots that its miner is ready."""
    reg = ClientRegularizer(
        num_items,
        DefenseConfig(
            name="regularization", beta=beta, gamma=gamma,
            num_popular=num_popular, mining_rounds=2,
        ),
    )
    rng = make_rng(seed)
    matrix = rng.normal(size=(num_items, dim))
    hot = np.arange(num_popular)
    for _ in range(3):
        matrix = matrix.copy()
        matrix[hot] += rng.normal(scale=2.0, size=(num_popular, dim))
        reg.observe(matrix)
    return reg, matrix, hot


class TestWeights:
    def test_normalised(self):
        weights = exponential_rank_weights(5)
        assert weights.sum() == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        weights = exponential_rank_weights(6)
        assert (np.diff(weights) < 0).all()

    def test_exponential_shape(self):
        weights = exponential_rank_weights(4)
        ratios = weights[1:] / weights[:-1]
        np.testing.assert_allclose(ratios, np.exp(-1.0))


class TestBeforeReady:
    def test_zero_grads_before_mining_completes(self):
        reg = ClientRegularizer(10, DefenseConfig(name="regularization"))
        reg.observe(np.zeros((10, 4)))
        item_grads = reg.item_grad_terms(np.array([1, 2]), np.zeros((10, 4)))
        np.testing.assert_array_equal(item_grads, 0.0)
        user_grad = reg.user_grad_term(np.ones(4), np.zeros((10, 4)))
        np.testing.assert_array_equal(user_grad, 0.0)


class TestRe1:
    def test_item_grads_increase_re1(self):
        reg, matrix, hot = ready_regularizer()
        popular = reg.miner.popular_items()
        weights = exponential_rank_weights(len(popular))
        batch = np.array([7, 8, 9])
        grads = reg.item_grad_terms(batch, matrix)
        # Simulated server step: v <- v - grad (lr=1); Re1 must increase.
        before = re1_value(matrix[batch], matrix[popular], weights)
        moved = matrix.copy()
        moved[batch] -= grads
        after = re1_value(moved[batch], moved[popular], weights)
        assert after > before

    def test_popular_items_in_batch_get_zero_grad(self):
        reg, matrix, hot = ready_regularizer()
        popular = reg.miner.popular_items()
        batch = np.array([int(popular[0]), 9])
        grads = reg.item_grad_terms(batch, matrix)
        np.testing.assert_array_equal(grads[0], 0.0)
        assert np.abs(grads[1]).sum() > 0

    def test_grad_matches_numeric(self):
        reg, matrix, hot = ready_regularizer(beta=1.0)
        popular = reg.miner.popular_items()
        weights = exponential_rank_weights(len(popular))
        batch = np.array([7, 8])

        def negative_re1_of_item(vec):
            vecs = matrix[batch].copy()
            vecs[0] = vec
            return -re1_value(vecs, matrix[popular], weights)

        grads = reg.item_grad_terms(batch, matrix)
        numeric = numeric_gradient(negative_re1_of_item, matrix[batch[0]].copy())
        np.testing.assert_allclose(grads[0], numeric, atol=1e-6)

    def test_beta_zero_disables(self):
        reg, matrix, _ = ready_regularizer(beta=0.0)
        grads = reg.item_grad_terms(np.array([7]), matrix)
        np.testing.assert_array_equal(grads, 0.0)


class TestRe2:
    def test_user_grad_increases_re2(self):
        reg, matrix, hot = ready_regularizer(gamma=1.0)
        popular = reg.miner.popular_items()
        weights = exponential_rank_weights(len(popular))
        user = make_rng(3).normal(size=4)
        grad = reg.user_grad_term(user, matrix)
        before = re2_value(matrix[popular], user, weights)
        after = re2_value(matrix[popular], user - grad, weights)
        assert after > before

    def test_grad_matches_numeric(self):
        reg, matrix, _ = ready_regularizer(gamma=1.0)
        popular = reg.miner.popular_items()
        weights = exponential_rank_weights(len(popular))
        user = make_rng(4).normal(size=4)
        grad = reg.user_grad_term(user, matrix)
        numeric = numeric_gradient(
            lambda u: -re2_value(matrix[popular], u, weights), user.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_gamma_zero_disables(self):
        reg, matrix, _ = ready_regularizer(gamma=0.0)
        grad = reg.user_grad_term(np.ones(4), matrix)
        np.testing.assert_array_equal(grad, 0.0)


class TestValues:
    def test_re1_empty_unpopular(self):
        weights = exponential_rank_weights(2)
        assert re1_value(np.zeros((0, 3)), np.ones((2, 3)), weights) == 0.0

    def test_re2_non_negative(self):
        rng = make_rng(5)
        popular = rng.normal(size=(3, 4))
        weights = exponential_rank_weights(3)
        assert re2_value(popular, rng.normal(size=4), weights) >= 0.0


class TestTowerTerm:
    def test_mf_returns_empty(self):
        from repro.models.mf import MFModel

        reg, matrix, _ = ready_regularizer()
        assert reg.param_grad_terms(MFModel(12, 4, seed=0), np.array([1])) == []

    def test_zero_before_ready(self):
        from repro.models.ncf import NCFModel

        reg = ClientRegularizer(12, DefenseConfig(name="regularization"))
        model = NCFModel(12, 4, mlp_layers=(8,), seed=0)
        grads = reg.param_grad_terms(model, np.array([1, 2]))
        assert all((g == 0).all() for g in grads)

    def test_confined_to_user_slot_of_first_layer(self):
        from repro.models.ncf import NCFModel

        reg, matrix, _ = ready_regularizer(num_items=12, dim=4)
        model = NCFModel(12, 4, mlp_layers=(8,), seed=0)
        model.item_embeddings[...] = matrix
        grads = reg.param_grad_terms(model, np.array([7, 8, 9]))
        assert len(grads) == len(model.interaction_params())
        # Only the user-slot rows of W1 carry gradient.
        assert np.abs(grads[0][:4]).sum() > 0
        assert np.abs(grads[0][4:]).sum() == 0
        assert all((g == 0).all() for g in grads[1:])

    def test_gamma_zero_disables(self):
        from repro.models.ncf import NCFModel

        reg, matrix, _ = ready_regularizer(gamma=0.0)
        model = NCFModel(12, 4, mlp_layers=(8,), seed=0)
        grads = reg.param_grad_terms(model, np.array([7]))
        assert all((g == 0).all() for g in grads)

    def test_server_step_lowers_pseudo_user_scores(self):
        from repro.models.ncf import NCFModel

        reg, matrix, _ = ready_regularizer(num_items=12, dim=4, gamma=1.0)
        model = NCFModel(12, 4, mlp_layers=(8,), seed=3)
        model.item_embeddings[...] = matrix
        popular = reg.miner.popular_items()
        pseudo = model.item_embeddings[popular]
        items = model.item_embeddings[[7, 8, 9]]
        users_rep = np.repeat(pseudo, len(items), axis=0)
        items_rep = np.tile(items, (len(pseudo), 1))
        before, _ = model.forward(users_rep, items_rep)
        grads = reg.param_grad_terms(model, np.array([7, 8, 9]))
        model.apply_param_update([-1.0 * g for g in grads])
        after, _ = model.forward(users_rep, items_rep)
        assert after.mean() < before.mean()
