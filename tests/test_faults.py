"""Fault-injection layer: determinism, parity, and degradation semantics.

Covers the tentpole contracts of the fault-tolerant runtime:

* `FaultPlan` is a pure function of ``(seed, config, round)`` — same
  seed, same schedule, forever;
* the zero-fault configuration is *bit-identical* to the pre-fault
  engine (no controller, no gate rejections, no behavioural drift);
* the loop and batch engines stay bit-identical under any fault
  schedule, including the staleness splices and the server gate;
* every fault and every mitigation is counted — nothing drops
  silently.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import AttackConfig, ExperimentConfig, FaultConfig, ModelConfig, TrainConfig
from repro.federated.faults import (
    FAULT_CORRUPTION,
    FAULT_DROPOUT,
    FAULT_NONE,
    FAULT_STRAGGLER,
    FaultController,
    FaultPlan,
    StalenessBuffer,
)
from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.federated.simulation import FederatedSimulation
from repro.federated.update_batch import UpdateBatch
from repro.models.mf import MFModel

AGGRESSIVE = FaultConfig(
    dropout_rate=0.2,
    straggler_rate=0.15,
    straggler_max_delay=3,
    corruption_rate=0.1,
    corruption_mode="nan",
)


def _config(dim: int = 8, rounds: int = 12, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        model=ModelConfig(kind="mf", embedding_dim=dim, seed=3),
        train=TrainConfig(rounds=rounds, users_per_round=16, lr=1.0, eval_every=0),
        seed=3,
        **kwargs,
    )


# ----------------------------------------------------------------------
# FaultConfig validation
# ----------------------------------------------------------------------

class TestFaultConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(dropout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(dropout_rate=0.6, straggler_rate=0.5)
        with pytest.raises(ValueError):
            FaultConfig(corruption_mode="garbage")
        with pytest.raises(ValueError):
            FaultConfig(staleness_discount=0.0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_rate=0.1, straggler_max_delay=0)

    def test_enabled_flags(self):
        assert not FaultConfig().enabled
        assert not FaultConfig().injects_faults
        assert FaultConfig(dropout_rate=0.1).injects_faults
        assert FaultConfig(min_quorum=4).enabled
        assert not FaultConfig(min_quorum=4).injects_faults
        assert FaultConfig(max_upload_norm=1.0).enabled


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        plans = [FaultPlan(AGGRESSIVE, seed=11) for _ in range(2)]
        for round_idx in range(20):
            a = plans[0].round_faults(round_idx, 32)
            b = plans[1].round_faults(round_idx, 32)
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.delays, b.delays)

    def test_different_seeds_differ(self):
        a = FaultPlan(AGGRESSIVE, seed=1).round_faults(0, 256)
        b = FaultPlan(AGGRESSIVE, seed=2).round_faults(0, 256)
        assert not np.array_equal(a.kinds, b.kinds)

    def test_zero_fault_plan_schedules_nothing(self):
        plan = FaultPlan(FaultConfig(), seed=7)
        for round_idx in range(10):
            faults = plan.round_faults(round_idx, 64)
            assert not faults.any_fault
            assert (faults.kinds == FAULT_NONE).all()

    def test_rates_approximately_respected(self):
        plan = FaultPlan(AGGRESSIVE, seed=0)
        kinds = np.concatenate(
            [plan.round_faults(r, 1000).kinds for r in range(20)]
        )
        assert abs((kinds == FAULT_DROPOUT).mean() - 0.2) < 0.02
        assert abs((kinds == FAULT_STRAGGLER).mean() - 0.15) < 0.02
        assert abs((kinds == FAULT_CORRUPTION).mean() - 0.1) < 0.02

    def test_straggler_delays_in_range(self):
        plan = FaultPlan(AGGRESSIVE, seed=0)
        faults = plan.round_faults(0, 2000)
        stragglers = faults.kinds == FAULT_STRAGGLER
        assert stragglers.any()
        assert (faults.delays[stragglers] >= 1).all()
        assert (faults.delays[stragglers] <= 3).all()
        assert (faults.delays[~stragglers] == 0).all()


# ----------------------------------------------------------------------
# Zero-fault bit-identity
# ----------------------------------------------------------------------

class TestZeroFaultIdentity:
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_default_fault_config_is_bit_identical(self, tiny_dataset, engine):
        cfg = _config(attack=AttackConfig(name="pieck_uea", malicious_ratio=0.2, mining_rounds=2))
        plain = FederatedSimulation(cfg, tiny_dataset, engine=engine)
        res_plain = plain.run()
        gated = FederatedSimulation(
            dataclasses.replace(cfg, faults=FaultConfig()), tiny_dataset, engine=engine
        )
        res_gated = gated.run()
        assert res_plain.exposure == res_gated.exposure
        assert res_plain.hit_ratio == res_gated.hit_ratio
        assert np.array_equal(
            plain.model.item_embeddings, gated.model.item_embeddings
        )
        assert gated.fault_controller is None
        assert not res_gated.fault_stats.any_fault

    def test_quorum_only_config_is_bit_identical(self, tiny_dataset):
        cfg = _config()
        res_plain = FederatedSimulation(cfg, tiny_dataset).run()
        # A quorum far below the round size never fires.
        res_gated = FederatedSimulation(
            dataclasses.replace(cfg, faults=FaultConfig(min_quorum=2)), tiny_dataset
        ).run()
        assert res_plain.exposure == res_gated.exposure
        assert res_plain.hit_ratio == res_gated.hit_ratio
        assert not res_gated.fault_stats.any_fault


# ----------------------------------------------------------------------
# Loop/batch parity under faults
# ----------------------------------------------------------------------

class TestFaultedEngineParity:
    @pytest.mark.parametrize(
        "faults",
        [
            FaultConfig(dropout_rate=0.3),
            FaultConfig(straggler_rate=0.3, straggler_max_delay=2),
            FaultConfig(corruption_rate=0.2, corruption_mode="nan"),
            AGGRESSIVE,
        ],
        ids=["dropout", "stragglers", "corruption", "aggressive"],
    )
    def test_mf_attack_parity(self, tiny_dataset, faults):
        cfg = _config(
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.2, mining_rounds=2),
            faults=faults,
        )
        batch = FederatedSimulation(cfg, tiny_dataset, engine="batch")
        loop = FederatedSimulation(cfg, tiny_dataset, engine="loop")
        res_b, res_l = batch.run(), loop.run()
        assert np.array_equal(batch.model.item_embeddings, loop.model.item_embeddings)
        assert res_b.exposure == res_l.exposure
        assert res_b.hit_ratio == res_l.hit_ratio
        assert res_b.fault_stats == res_l.fault_stats
        assert res_b.fault_stats.any_fault

    def test_ncf_overscale_with_norm_gate(self, tiny_dataset):
        cfg = ExperimentConfig(
            model=ModelConfig(kind="ncf", embedding_dim=8, mlp_layers=(16, 8), seed=3),
            train=TrainConfig(rounds=8, users_per_round=16, lr=0.05, eval_every=0),
            attack=AttackConfig(name="pieck_uea", malicious_ratio=0.2, mining_rounds=2),
            faults=FaultConfig(
                dropout_rate=0.1,
                straggler_rate=0.2,
                corruption_rate=0.15,
                corruption_mode="overscale",
                corruption_scale=1e8,
                max_upload_norm=50.0,
            ),
            seed=3,
        )
        batch = FederatedSimulation(cfg, tiny_dataset, engine="batch")
        loop = FederatedSimulation(cfg, tiny_dataset, engine="loop")
        res_b, res_l = batch.run(), loop.run()
        assert np.array_equal(batch.model.item_embeddings, loop.model.item_embeddings)
        for a, b in zip(
            batch.model.interaction_params(), loop.model.interaction_params()
        ):
            assert np.array_equal(a, b)
        assert res_b.fault_stats == res_l.fault_stats
        assert res_b.fault_stats.rejected_oversized > 0

    def test_same_seed_reproduces_faulted_run(self, tiny_dataset):
        cfg = _config(faults=AGGRESSIVE)
        a = FederatedSimulation(cfg, tiny_dataset).run()
        b = FederatedSimulation(cfg, tiny_dataset).run()
        assert a.exposure == b.exposure
        assert a.hit_ratio == b.hit_ratio
        assert a.fault_stats == b.fault_stats


# ----------------------------------------------------------------------
# Degradation semantics
# ----------------------------------------------------------------------

class TestDegradationSemantics:
    def test_nan_corruption_never_reaches_the_model(self, tiny_dataset):
        cfg = _config(faults=FaultConfig(corruption_rate=0.3, corruption_mode="nan"))
        sim = FederatedSimulation(cfg, tiny_dataset)
        result = sim.run()
        assert np.isfinite(sim.model.item_embeddings).all()
        # Injection → rejection is counted end to end.
        assert result.fault_stats.corrupted_uploads > 0
        assert (
            result.fault_stats.rejected_nonfinite
            == result.fault_stats.corrupted_uploads
        )

    def test_unmet_quorum_freezes_the_model(self, tiny_dataset):
        cfg = _config(
            rounds=6,
            faults=FaultConfig(dropout_rate=0.05, min_quorum=10**6),
        )
        sim = FederatedSimulation(cfg, tiny_dataset)
        before = sim.model.snapshot_items()
        result = sim.run()
        assert np.array_equal(sim.model.item_embeddings, before)
        assert result.fault_stats.quorum_failed_rounds == 6
        assert result.fault_stats.quorum_dropped_uploads > 0

    def test_dropout_still_trains_locally(self, tiny_dataset):
        # 100% dropout: the server never moves, but every sampled
        # client's private embedding does (connection lost after
        # download, not before training).
        cfg = _config(rounds=4, faults=FaultConfig(dropout_rate=1.0))
        sim = FederatedSimulation(cfg, tiny_dataset)
        items_before = sim.model.snapshot_items()
        users_before = sim.state.user_embeddings.copy()
        result = sim.run()
        assert np.array_equal(sim.model.item_embeddings, items_before)
        assert not np.array_equal(sim.state.user_embeddings, users_before)
        assert result.fault_stats.dropped_uploads == 4 * 16

    def test_straggler_discount_applied(self):
        # One straggler with delay 1 on a tiny crafted model: the stale
        # arrival must land scaled by staleness_discount ** 1.
        model = MFModel(num_items=4, embedding_dim=2, init_scale=0.0, seed=0)
        server = Server(model, lr=1.0)
        config = FaultConfig(straggler_rate=1.0, straggler_max_delay=1, staleness_discount=0.5)
        controller = FaultController(config, seed=0)
        grad = np.array([[1.0, 2.0]])
        update = ClientUpdate(
            user_id=0, item_ids=np.array([1]), item_grads=grad.copy()
        )
        first = controller.apply_to_updates([update], [0], round_idx=0)
        assert first == []  # deferred, not applied
        assert controller.buffer.pending == 1
        arrivals = controller.apply_to_updates([], [], round_idx=1)
        assert len(arrivals) == 1
        assert np.array_equal(arrivals[0].item_grads, grad * 0.5)
        assert controller.stale_applied == 1

    def test_stale_pending_counts_in_flight(self, tiny_dataset):
        cfg = _config(
            rounds=3,
            faults=FaultConfig(straggler_rate=0.5, straggler_max_delay=3),
        )
        result = FederatedSimulation(cfg, tiny_dataset).run()
        stats = result.fault_stats
        assert stats.deferred_uploads == stats.stale_applied + stats.stale_pending
        assert stats.stale_pending > 0


# ----------------------------------------------------------------------
# Server sanity gate (no faults involved)
# ----------------------------------------------------------------------

class TestServerSanityGate:
    def _update(self, user_id: int, grads: np.ndarray) -> ClientUpdate:
        return ClientUpdate(
            user_id=user_id,
            item_ids=np.arange(len(grads)),
            item_grads=grads,
        )

    def test_nan_upload_rejected_on_reference_path(self):
        model = MFModel(num_items=6, embedding_dim=2, init_scale=0.1, seed=0)
        server = Server(model, lr=1.0)
        before = model.snapshot_items()
        poison = self._update(0, np.full((2, 2), np.nan))
        honest = self._update(1, np.ones((2, 2)))
        server.apply_updates([poison, honest])
        assert np.isfinite(model.item_embeddings).all()
        assert server.rejected_nonfinite == 1
        assert server.rejected_uploads == 1
        # The honest update still landed.
        assert not np.array_equal(model.item_embeddings, before)

    def test_nan_upload_rejected_on_batch_path(self):
        model = MFModel(num_items=6, embedding_dim=2, init_scale=0.1, seed=0)
        server = Server(model, lr=1.0)
        poison = self._update(0, np.full((2, 2), np.inf))
        honest = self._update(1, np.ones((2, 2)))
        server.apply_batch(UpdateBatch.from_updates([poison, honest]))
        assert np.isfinite(model.item_embeddings).all()
        assert server.rejected_nonfinite == 1

    def test_gate_paths_agree(self):
        updates = [
            self._update(0, np.full((2, 2), np.nan)),
            self._update(1, np.ones((2, 2))),
            self._update(2, np.full((3, 2), 100.0)),
        ]
        servers = []
        for ingest in ("updates", "batch"):
            model = MFModel(num_items=6, embedding_dim=2, init_scale=0.1, seed=0)
            server = Server(model, lr=0.1, max_upload_norm=5.0)
            if ingest == "updates":
                server.apply_updates([u for u in updates])
            else:
                server.apply_batch(UpdateBatch.from_updates(updates))
            servers.append(server)
        ref, batch = servers
        assert ref.rejected_nonfinite == batch.rejected_nonfinite == 1
        assert ref.rejected_oversized == batch.rejected_oversized == 1
        assert np.array_equal(
            ref.model.item_embeddings, batch.model.item_embeddings
        )

    def test_quorum_skips_round(self):
        model = MFModel(num_items=6, embedding_dim=2, init_scale=0.1, seed=0)
        server = Server(model, lr=1.0, min_quorum=3)
        before = model.snapshot_items()
        server.apply_updates([self._update(0, np.ones((2, 2)))])
        assert np.array_equal(model.item_embeddings, before)
        assert server.quorum_failed_rounds == 1
        assert server.quorum_dropped_uploads == 1


# ----------------------------------------------------------------------
# UpdateBatch.select_clients
# ----------------------------------------------------------------------

class TestSelectClients:
    def _batch(self) -> UpdateBatch:
        updates = [
            ClientUpdate(
                user_id=k,
                item_ids=np.arange(k + 1),
                item_grads=np.full((k + 1, 2), float(k)),
                param_grads=[np.full((3,), float(k))] if k % 2 == 0 else [],
            )
            for k in range(4)
        ]
        return UpdateBatch.from_updates(updates)

    def test_all_true_returns_same_object(self):
        batch = self._batch()
        assert batch.select_clients(np.ones(4, dtype=bool)) is batch

    def test_subset_matches_materialised_reference(self):
        batch = self._batch()
        keep = np.array([True, False, True, True])
        selected = batch.select_clients(keep)
        expected = UpdateBatch.from_updates(
            [u for u, k in zip(batch.to_updates(), keep) if k]
        )
        assert np.array_equal(selected.user_ids, expected.user_ids)
        assert np.array_equal(selected.item_ids, expected.item_ids)
        assert np.array_equal(selected.item_grads, expected.item_grads)
        assert np.array_equal(selected.lengths, expected.lengths)
        assert np.array_equal(selected.param_owners, expected.param_owners)
        assert np.array_equal(selected.malicious, expected.malicious)
        for a, b in zip(selected.param_stacks, expected.param_stacks):
            assert np.array_equal(a, b)

    def test_empty_selection(self):
        batch = self._batch()
        empty = batch.select_clients(np.zeros(4, dtype=bool))
        assert empty.num_clients == 0
        assert len(empty.item_ids) == 0
        assert len(empty.param_owners) == 0


# ----------------------------------------------------------------------
# StalenessBuffer bookkeeping
# ----------------------------------------------------------------------

class TestStalenessBuffer:
    def test_fifo_per_round(self):
        buffer = StalenessBuffer()
        for tag in range(3):
            buffer.defer(5, _deferred(tag))
        assert buffer.pending == 3
        assert [u.user_id for u in buffer.pop_due(5)] == [0, 1, 2]
        assert buffer.pending == 0
        assert buffer.pop_due(5) == []

    def test_state_roundtrip(self):
        buffer = StalenessBuffer()
        buffer.defer(2, _deferred(9))
        restored = StalenessBuffer()
        restored.restore(buffer.state())
        assert restored.pending == 1
        assert restored.pop_due(2)[0].user_id == 9


def _deferred(user_id: int):
    from repro.federated.faults import DeferredUpload

    return DeferredUpload(
        user_id=user_id,
        item_ids=np.array([0]),
        item_grads=np.zeros((1, 2)),
        param_grads=[],
        malicious=False,
        discount=1.0,
        origin_round=0,
    )
