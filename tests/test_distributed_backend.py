"""Shared-cache backend: lease coordination, chaos, and parity.

Workers here are *real processes* (forked, or SIGKILLed mid-cell) so
the lease reclamation path is exercised against actual process death,
not a simulated exception.  The contract under test is the standing
invariant: however many workers drain the grid, and however many of
them die, the cache ends up with entries byte-identical to the
sequential reference, and every degradation path is counted.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.config import DatasetConfig, ExperimentConfig, ModelConfig, TrainConfig
from repro.experiments.backend import (
    LocalBackend,
    SharedCacheBackend,
    lease_age,
    lease_path_for,
    read_lease,
    refresh_lease,
    release_lease,
    try_claim_lease,
    try_reclaim_lease,
)
from repro.experiments.sweep import (
    CellSpec,
    SweepExecutionError,
    SweepRunner,
    register_cell_kind,
)

DATASET = DatasetConfig(name="custom", scale=0.08, seed=5)


def _config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DATASET,
        model=ModelConfig(kind="mf", embedding_dim=8, seed=seed),
        train=TrainConfig(rounds=2, users_per_round=8, lr=1.0),
        seed=seed,
    )


def _fast(spec: CellSpec, dataset) -> list[list[float]]:
    """Deterministic cell with no training: value derives from payload."""
    index = spec.payload[-1]
    return [[float(index), float(index) ** 2]]


def _slow(spec: CellSpec, dataset) -> list[list[float]]:
    """Announce the start (marker file), then take a while."""
    marker_dir, index = spec.payload
    with open(os.path.join(marker_dir, f"started-{index}"), "w"):
        pass
    time.sleep(1.0)
    return [[float(index), float(index) ** 2]]


register_cell_kind("test_dist_fast", _fast)
register_cell_kind("test_dist_slow", _slow)


def _cells(kind: str, marker_dir: str, count: int) -> list[CellSpec]:
    return [
        CellSpec(
            config=_config(seed=3 + index),
            kind=kind,
            payload=(marker_dir, index),
        )
        for index in range(count)
    ]


def _expected(count: int) -> list[list[list[float]]]:
    return [[[float(i), float(i) ** 2]] for i in range(count)]


def _cache_bytes(cache_dir: str) -> dict[str, bytes]:
    return {
        name: open(os.path.join(cache_dir, name), "rb").read()
        for name in sorted(os.listdir(cache_dir))
        if name.endswith(".json")
    }


def _worker_main(
    kind: str,
    marker_dir: str,
    count: int,
    cache_dir: str,
    owner: str,
    stats_path: str,
    lease_ttl: float = 2.0,
) -> None:
    """One independent worker process draining the shared grid."""
    backend = SharedCacheBackend(
        owner=owner, lease_ttl=lease_ttl, poll_interval=0.02, wait_timeout=60.0
    )
    runner = SweepRunner(cache_dir=cache_dir, backend=backend)
    runner.run(_cells(kind, marker_dir, count), {"default": DATASET})
    stats = runner.last_stats
    with open(stats_path, "w") as handle:
        json.dump(
            {
                "executed": stats.executed,
                "peer_served": stats.peer_served,
                "reclaimed": stats.reclaimed,
                "cache_hits": stats.cache_hits,
            },
            handle,
        )


class TestLeasePrimitives:
    def test_exclusive_claim(self, tmp_path):
        path = str(tmp_path / "cell.json.lease")
        assert try_claim_lease(path, {"owner": "a", "token": "a#1"})
        assert not try_claim_lease(path, {"owner": "b", "token": "b#1"})
        assert read_lease(path)["owner"] == "a"

    def test_release_frees_the_cell(self, tmp_path):
        path = str(tmp_path / "cell.json.lease")
        try_claim_lease(path, {"owner": "a", "token": "a#1"})
        release_lease(path)
        assert read_lease(path) is None
        assert try_claim_lease(path, {"owner": "b", "token": "b#1"})

    def test_release_is_idempotent(self, tmp_path):
        path = str(tmp_path / "cell.json.lease")
        release_lease(path)  # never claimed: no error

    def test_heartbeat_refreshes_age(self, tmp_path):
        path = str(tmp_path / "cell.json.lease")
        try_claim_lease(path, {"owner": "a", "token": "a#1"})
        os.utime(path, (time.time() - 100, time.time() - 100))
        assert lease_age(path) > 50
        assert refresh_lease(path)
        assert lease_age(path) < 5

    def test_refresh_reports_vanished_lease(self, tmp_path):
        assert not refresh_lease(str(tmp_path / "gone.lease"))

    def test_reclaim_confirms_via_token(self, tmp_path):
        path = str(tmp_path / "cell.json.lease")
        try_claim_lease(path, {"owner": "dead", "token": "dead#1"})
        assert try_reclaim_lease(path, {"owner": "b", "token": "b#1"}, "b#1")
        assert read_lease(path)["owner"] == "b"

    def test_racing_reclaims_last_writer_owns(self, tmp_path):
        # Sequential replacements: the file always holds exactly the
        # last writer's record — one token, one owner, at any instant.
        path = str(tmp_path / "cell.json.lease")
        try_claim_lease(path, {"owner": "dead", "token": "dead#1"})
        assert try_reclaim_lease(path, {"owner": "b", "token": "b#1"}, "b#1")
        assert try_reclaim_lease(path, {"owner": "c", "token": "c#1"}, "c#1")
        assert read_lease(path) == {"owner": "c", "token": "c#1"}

    def test_reclaim_not_confirmed_when_overwritten_before_readback(
        self, tmp_path
    ):
        # Simulate losing the race: the read-back sees a token other
        # than ours (a peer's replace landed in between) → no confirm.
        path = str(tmp_path / "cell.json.lease")
        try_claim_lease(path, {"owner": "peer", "token": "peer#1"})
        assert not try_reclaim_lease(
            path, {"owner": "peer", "token": "peer#1"}, "mine#1"
        )

    def test_lease_age_none_when_missing(self, tmp_path):
        assert lease_age(str(tmp_path / "gone.lease")) is None

    def test_lease_path_sits_next_to_entry(self):
        assert lease_path_for("/cache/abc.json") == "/cache/abc.json.lease"


class TestSharedBackendSingleWorker:
    def test_matches_sequential_reference_byte_identical(self, tmp_path):
        seq_dir = str(tmp_path / "seq")
        shared_dir = str(tmp_path / "shared")
        cells = _cells("test_dist_fast", str(tmp_path), 4)
        SweepRunner(workers=0, cache_dir=seq_dir).run(cells, {"default": DATASET})
        backend = SharedCacheBackend(owner="w1", lease_ttl=5.0)
        runner = SweepRunner(cache_dir=shared_dir, backend=backend)
        results = runner.run(cells, {"default": DATASET})
        assert results == _expected(4)
        assert _cache_bytes(shared_dir) == _cache_bytes(seq_dir)
        assert runner.last_stats.executed == 4
        assert runner.last_stats.reclaimed == 0

    def test_no_leases_left_behind(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        backend = SharedCacheBackend(owner="w1", lease_ttl=5.0)
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        runner.run(_cells("test_dist_fast", str(tmp_path), 3), {"default": DATASET})
        assert not [n for n in os.listdir(cache_dir) if n.endswith(".lease")]

    def test_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            SweepRunner(backend=SharedCacheBackend(owner="w1"))

    def test_warm_cache_serves_everything(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cells = _cells("test_dist_fast", str(tmp_path), 3)
        backend = SharedCacheBackend(owner="w1", lease_ttl=5.0)
        SweepRunner(cache_dir=cache_dir, backend=backend).run(
            cells, {"default": DATASET}
        )
        rerun = SweepRunner(
            cache_dir=cache_dir,
            backend=SharedCacheBackend(owner="w2", lease_ttl=5.0),
        )
        rerun.run(cells, {"default": DATASET})
        assert rerun.last_stats.cache_hits == 3
        assert rerun.last_stats.executed == 0

    def test_stale_lease_of_dead_worker_is_reclaimed(self, tmp_path):
        # Plant a lease nobody heartbeats, older than the ttl: the
        # drain must take it over (counted), run the cell, and finish.
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        cells = _cells("test_dist_fast", str(tmp_path), 2)
        from repro.experiments.sweep import cell_cache_key, dataset_fingerprint
        from repro.datasets.loaders import load_dataset

        fp = dataset_fingerprint(load_dataset(DATASET))
        key = cell_cache_key(cells[0], fp)
        lease = lease_path_for(os.path.join(cache_dir, f"{key}.json"))
        try_claim_lease(lease, {"owner": "dead", "token": "dead#1"})
        stale = time.time() - 60
        os.utime(lease, (stale, stale))
        backend = SharedCacheBackend(owner="w1", lease_ttl=2.0, poll_interval=0.02)
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        results = runner.run(cells, {"default": DATASET})
        assert results == _expected(2)
        assert runner.last_stats.reclaimed == 1

    def test_live_lease_blocks_until_wait_timeout(self, tmp_path):
        # A fresh lease that is never released and never goes stale
        # (we keep it heartbeated from the test) must end in a
        # structured error, not an infinite spin.
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        cells = _cells("test_dist_fast", str(tmp_path), 1)
        from repro.experiments.sweep import cell_cache_key, dataset_fingerprint
        from repro.datasets.loaders import load_dataset

        fp = dataset_fingerprint(load_dataset(DATASET))
        key = cell_cache_key(cells[0], fp)
        lease = lease_path_for(os.path.join(cache_dir, f"{key}.json"))
        try_claim_lease(lease, {"owner": "wedged", "token": "wedged#1"})
        backend = SharedCacheBackend(
            owner="w1", lease_ttl=30.0, poll_interval=0.02, wait_timeout=0.5
        )
        runner = SweepRunner(cache_dir=cache_dir, backend=backend)
        with pytest.raises(SweepExecutionError, match="no progress"):
            runner.run(cells, {"default": DATASET})
        assert runner.last_stats.failed == 1

    def test_jitter_is_deterministic_per_owner(self):
        a = SharedCacheBackend(owner="worker-a")
        b = SharedCacheBackend(owner="worker-a")
        c = SharedCacheBackend(owner="worker-b")
        draws_a = [float(a._rng.random()) for _ in range(4)]
        draws_b = [float(b._rng.random()) for _ in range(4)]
        draws_c = [float(c._rng.random()) for _ in range(4)]
        assert draws_a == draws_b
        assert draws_a != draws_c


class TestSharedBackendMultiWorker:
    def test_two_workers_cooperatively_drain_the_grid(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        count = 6
        ctx = multiprocessing.get_context("fork")
        stats_paths = [str(tmp_path / f"stats-{i}.json") for i in range(2)]
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    "test_dist_fast", marker_dir, count, cache_dir,
                    f"w{i}", stats_paths[i],
                ),
            )
            for i in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        stats = [json.load(open(path)) for path in stats_paths]
        # Between them the two workers account for every cell, and
        # nothing ran in this (parent) process.
        assert sum(s["executed"] + s["peer_served"] + s["cache_hits"] for s in stats) == 2 * count
        assert sum(s["executed"] for s in stats) >= count
        # The shared cache matches the sequential reference bit for bit.
        seq_dir = str(tmp_path / "seq")
        SweepRunner(workers=0, cache_dir=seq_dir).run(
            _cells("test_dist_fast", marker_dir, count), {"default": DATASET}
        )
        assert _cache_bytes(cache_dir) == _cache_bytes(seq_dir)

    @pytest.mark.slow
    def test_sigkilled_worker_mid_cell_is_reclaimed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        count = 3
        ctx = multiprocessing.get_context("fork")
        victim_stats = str(tmp_path / "stats-victim.json")
        survivor_stats = str(tmp_path / "stats-survivor.json")
        victim = ctx.Process(
            target=_worker_main,
            args=(
                "test_dist_slow", marker_dir, count, cache_dir,
                "victim", victim_stats, 1.0,
            ),
        )
        victim.start()
        # Wait until the victim is demonstrably mid-cell (it wrote a
        # started marker, so it holds that cell's lease), then kill it
        # dead — no cleanup, no release.
        deadline = time.time() + 60
        while not os.listdir(marker_dir):
            assert time.time() < deadline, "victim never started a cell"
            time.sleep(0.02)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert not os.path.exists(victim_stats)
        survivor = ctx.Process(
            target=_worker_main,
            args=(
                "test_dist_slow", marker_dir, count, cache_dir,
                "survivor", survivor_stats, 1.0,
            ),
        )
        survivor.start()
        survivor.join(timeout=120)
        assert survivor.exitcode == 0
        stats = json.load(open(survivor_stats))
        # The survivor finished the whole grid, reclaiming the dead
        # worker's lease (unless the kill landed between cells, in
        # which case the lease was already released — assert on the
        # grid, and on the counter when a lease was actually held).
        leases_left = [
            n for n in os.listdir(cache_dir) if n.endswith(".lease")
        ]
        assert leases_left == []
        entries = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
        assert len(entries) == count
        assert stats["executed"] + stats["cache_hits"] == count
        assert stats["reclaimed"] >= 1
        # Byte-identical to the sequential reference despite the chaos
        # (same specs — the marker dir is part of the payload, hence of
        # the cache key).
        seq_dir = str(tmp_path / "seq")
        SweepRunner(workers=0, cache_dir=seq_dir).run(
            _cells("test_dist_slow", marker_dir, count), {"default": DATASET}
        )
        assert _cache_bytes(cache_dir) == _cache_bytes(seq_dir)


class TestLocalBackendExplicit:
    def test_local_backend_injection_matches_default(self, tmp_path):
        cells = _cells("test_dist_fast", str(tmp_path), 3)
        default = SweepRunner(workers=0).run(cells, {"default": DATASET})
        explicit = SweepRunner(backend=LocalBackend(workers=0)).run(
            cells, {"default": DATASET}
        )
        assert explicit == default
