"""Tests for the interaction dataset container."""

import numpy as np
import pytest

from repro.datasets.base import InteractionDataset


def make_dataset():
    train_pos = [
        np.array([0, 1, 2]),
        np.array([0, 1]),
        np.array([0]),
        np.array([3]),
    ]
    test_items = np.array([3, 2, 1, 0])
    return InteractionDataset("unit", 4, 5, train_pos, test_items)


class TestValidation:
    def test_wrong_user_count_rejected(self):
        with pytest.raises(ValueError, match="train_pos"):
            InteractionDataset("x", 3, 5, [np.array([0])], np.array([1, 2, 3]))

    def test_wrong_test_count_rejected(self):
        with pytest.raises(ValueError, match="test_items"):
            InteractionDataset("x", 1, 5, [np.array([0])], np.array([1, 2]))

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            InteractionDataset("x", 1, 5, [np.array([9])], np.array([0]))

    def test_out_of_range_test_item_rejected(self):
        with pytest.raises(ValueError, match="test item"):
            InteractionDataset("x", 1, 5, [np.array([0])], np.array([7]))


class TestPopularity:
    def test_counts(self):
        data = make_dataset()
        np.testing.assert_array_equal(data.popularity(), [3, 2, 1, 1, 0])

    def test_counts_with_test(self):
        data = make_dataset()
        counts = data.popularity(include_test=True)
        np.testing.assert_array_equal(counts, [4, 3, 2, 2, 0])

    def test_ranking_descending(self):
        data = make_dataset()
        ranking = data.popularity_ranking()
        counts = data.popularity()
        assert list(counts[ranking]) == sorted(counts, reverse=True)

    def test_rank_of_inverse(self):
        data = make_dataset()
        ranking = data.popularity_ranking()
        rank_of = data.popularity_rank_of()
        for position, item in enumerate(ranking):
            assert rank_of[item] == position

    def test_coldest_items(self):
        data = make_dataset()
        assert 4 in data.coldest_items(1)


class TestMembership:
    def test_train_set_and_has_interacted(self):
        data = make_dataset()
        assert data.has_interacted(0, 2)
        assert not data.has_interacted(0, 4)
        assert data.train_set(1) == {0, 1}

    def test_train_mask_shape_and_content(self):
        data = make_dataset()
        mask = data.train_mask()
        assert mask.shape == (4, 5)
        assert mask[0, :3].all() and not mask[0, 3:].any()
        assert int(mask.sum()) == data.num_train_interactions

    def test_uninteracted_excludes_train_and_test(self):
        data = make_dataset()
        items = set(data.uninteracted_items(0).tolist())
        assert items == {4}  # 0,1,2 in train, 3 is the test item

    def test_num_train_interactions(self):
        assert make_dataset().num_train_interactions == 7
