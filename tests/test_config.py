"""Tests for configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (
    AttackConfig,
    DatasetConfig,
    DefenseConfig,
    ExperimentConfig,
    ModelConfig,
    TrainConfig,
    replace,
)


class TestTrainConfig:
    def test_effective_client_lr_defaults_to_server(self):
        cfg = TrainConfig(lr=0.3)
        assert cfg.effective_client_lr == 0.3

    def test_effective_client_lr_override(self):
        cfg = TrainConfig(lr=0.3, client_lr=0.01)
        assert cfg.effective_client_lr == 0.01

    def test_frozen(self):
        cfg = TrainConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.lr = 2.0


class TestExperimentConfig:
    def test_defaults_compose(self):
        cfg = ExperimentConfig()
        assert cfg.attack is None
        assert cfg.defense.name == "none"
        assert cfg.model.kind == "mf"

    def test_replace_derives_variant(self):
        cfg = ExperimentConfig()
        variant = replace(cfg, attack=AttackConfig(name="pieck_ipe"))
        assert variant.attack.name == "pieck_ipe"
        assert cfg.attack is None  # original untouched

    def test_nested_replace(self):
        cfg = ExperimentConfig()
        variant = replace(cfg, train=replace(cfg.train, rounds=5))
        assert variant.train.rounds == 5


class TestAttackConfig:
    def test_defaults_follow_paper(self):
        cfg = AttackConfig()
        assert cfg.malicious_ratio == 0.05
        assert cfg.mining_rounds == 2
        assert cfg.num_popular == 10
        assert cfg.num_targets == 1

    def test_multi_target_strategy_default(self):
        assert AttackConfig().multi_target_strategy == "one_then_copy"


class TestDefenseConfig:
    def test_defaults(self):
        cfg = DefenseConfig()
        assert cfg.name == "none"
        assert cfg.beta >= 0 and cfg.gamma >= 0


class TestDatasetAndModelConfig:
    def test_dataset_defaults(self):
        cfg = DatasetConfig()
        assert cfg.name == "ml-100k"
        assert cfg.scale == 1.0

    def test_model_defaults(self):
        cfg = ModelConfig()
        assert cfg.kind == "mf"
        assert cfg.embedding_dim == 16
        assert len(cfg.mlp_layers) == 2
