"""Tests for the server audit log and the Eq. 11 empirical validation."""

import numpy as np
import pytest

from repro.analysis.audit import poison_share_summary, theory_vs_measured
from repro.experiments import experiment
from repro.federated.audit import ItemRoundRecord, ServerAuditLog
from repro.federated.payload import ClientUpdate
from repro.federated.simulation import FederatedSimulation


def _update(user_id, item_ids, norm=1.0, malicious=False):
    item_ids = np.asarray(item_ids)
    grads = np.zeros((len(item_ids), 2))
    grads[:, 0] = norm
    return ClientUpdate(
        user_id=user_id, item_ids=item_ids, item_grads=grads, malicious=malicious
    )


class TestItemRoundRecord:
    def test_shares(self):
        record = ItemRoundRecord(
            round_idx=0, item_id=3,
            benign_count=1, malicious_count=3,
            benign_norm=0.5, malicious_norm=4.5,
        )
        assert record.total_count == 4
        assert record.poison_count_share == pytest.approx(0.75)
        assert record.poison_mass_share == pytest.approx(0.9)

    def test_zero_contributions(self):
        record = ItemRoundRecord(0, 0, 0, 0, 0.0, 0.0)
        assert record.poison_count_share == 0.0
        assert record.poison_mass_share == 0.0


class TestServerAuditLog:
    def test_records_per_item_counts(self):
        log = ServerAuditLog()
        log.record([
            _update(0, [1, 2]),
            _update(1, [2]),
            _update(9, [2], norm=10.0, malicious=True),
        ])
        assert log.rounds_recorded == 1
        item2 = log.for_item(2)
        assert len(item2) == 1
        assert item2[0].benign_count == 2
        assert item2[0].malicious_count == 1
        assert item2[0].malicious_norm == pytest.approx(10.0)
        assert log.for_item(1)[0].malicious_count == 0

    def test_round_index_advances(self):
        log = ServerAuditLog()
        log.record([_update(0, [0])])
        log.record([_update(0, [0])])
        rounds = [r.round_idx for r in log.for_item(0)]
        assert rounds == [0, 1]

    def test_poisoned_items(self):
        log = ServerAuditLog()
        log.record([
            _update(0, [1, 2]),
            _update(9, [5], malicious=True),
            _update(10, [3], malicious=True),
        ])
        assert log.poisoned_items().tolist() == [3, 5]

    def test_empty_round_still_counts(self):
        log = ServerAuditLog()
        log.record([])
        assert log.rounds_recorded == 1
        assert log.records == []


class TestPoisonShareSummary:
    def test_summary_over_rounds(self):
        log = ServerAuditLog()
        log.record([_update(0, [7]), _update(9, [7], malicious=True)])
        log.record([_update(9, [7], malicious=True)])
        summary = poison_share_summary(log, 7)
        assert summary.rounds_contributed == 2
        assert summary.benign_gradients == 1
        assert summary.malicious_gradients == 2
        assert summary.mean_count_share == pytest.approx((0.5 + 1.0) / 2)
        assert summary.overall_count_share == pytest.approx(2 / 3)

    def test_unseen_item_gives_zeros(self):
        summary = poison_share_summary(ServerAuditLog(), 42)
        assert summary.rounds_contributed == 0
        assert summary.overall_count_share == 0.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def audited_sim(self):
        config = experiment(
            "ml-100k", "mf", attack="pieck_uea", seed=0, rounds=40
        )
        sim = FederatedSimulation(config, audit=True)
        sim.run()
        return sim

    def test_simulation_exposes_audit_log(self, audited_sim):
        assert audited_sim.audit_log is not None
        assert audited_sim.audit_log.rounds_recorded == 40

    def test_target_receives_malicious_gradients(self, audited_sim):
        target = int(audited_sim.targets[0])
        summary = poison_share_summary(audited_sim.audit_log, target)
        assert summary.malicious_gradients > 0
        # Eq. 11's point: the poison share for a cold target is far
        # above the malicious ratio (5%), and the poison dominates the
        # gradient *mass* outright.
        ratio = audited_sim.attack_cfg.malicious_ratio
        assert summary.overall_count_share > 5 * ratio
        assert summary.mean_mass_share > 0.5

    def test_theory_tracks_measurement(self, audited_sim):
        rows = theory_vs_measured(
            audited_sim.audit_log,
            audited_sim.dataset,
            audited_sim.attack_cfg.malicious_ratio,
        )
        assert rows, "the attacked target must appear"
        ratio = audited_sim.attack_cfg.malicious_ratio
        for _, predicted, measured in rows:
            # Both far above the malicious ratio (Eq. 11's blow-up for
            # cold items), and the closed form tracks the measurement.
            assert predicted > 5 * ratio
            assert measured > 5 * ratio
            assert abs(predicted - measured) < 0.15

    def test_audit_disabled_by_default(self):
        config = experiment("ml-100k", "mf", seed=0, rounds=1)
        sim = FederatedSimulation(config)
        assert sim.audit_log is None
