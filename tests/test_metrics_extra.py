"""Tests for NDCG@K and exposure-concentration metrics."""

import numpy as np
import pytest

from repro.datasets.base import InteractionDataset
from repro.metrics.extra import exposure_distribution, exposure_gini, ndcg_at_k
from repro.metrics.ranking import sample_eval_negatives


def small_dataset():
    train_pos = [np.array([0, 1]), np.array([2, 3])]
    test_items = np.array([4, 5])
    return InteractionDataset("m", 2, 6, train_pos, test_items)


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        scores[0, 4] = 9.0
        scores[1, 5] = 9.0
        assert ndcg_at_k(scores, data, negatives, 3) == pytest.approx(1.0)

    def test_rank_discount(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        # Test items beaten by exactly one negative -> rank 1.
        scores[0, negatives[0][0]] = 9.0
        scores[0, 4] = 5.0
        scores[1, negatives[1][0]] = 9.0
        scores[1, 5] = 5.0
        expected = 1.0 / np.log2(3.0)
        assert ndcg_at_k(scores, data, negatives, 3) == pytest.approx(expected)

    def test_miss_is_zero(self):
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = np.zeros((2, 6))
        scores[0, 4] = -9.0
        scores[1, 5] = -9.0
        assert ndcg_at_k(scores, data, negatives, 3) == 0.0

    def test_never_exceeds_hit_ratio(self):
        from repro.metrics.ranking import hit_ratio_at_k

        rng = np.random.default_rng(0)
        data = small_dataset()
        negatives = sample_eval_negatives(data, 3, seed=0)
        scores = rng.normal(size=(2, 6))
        hr = hit_ratio_at_k(scores, data, negatives, 2)
        ndcg = ndcg_at_k(scores, data, negatives, 2)
        assert ndcg <= hr + 1e-12


class TestExposure:
    def test_distribution_counts_slots(self):
        scores = np.array([[3.0, 2.0, 1.0], [3.0, 2.0, 1.0]])
        mask = np.zeros((2, 3), dtype=bool)
        counts = exposure_distribution(scores, mask, 2)
        np.testing.assert_array_equal(counts, [2, 2, 0])

    def test_distribution_respects_mask(self):
        scores = np.array([[3.0, 2.0, 1.0]])
        mask = np.array([[True, False, False]])
        counts = exposure_distribution(scores, mask, 2)
        np.testing.assert_array_equal(counts, [0, 1, 1])

    def test_gini_uniform_zero(self):
        # Every item recommended equally often.
        scores = np.tile(np.array([[2.0, 1.0]]), (2, 1))
        scores[1] = scores[1][::-1]
        mask = np.zeros((2, 2), dtype=bool)
        assert exposure_gini(scores, mask, 1) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_high(self):
        # All users get the same single item.
        scores = np.zeros((4, 10))
        scores[:, 3] = 5.0
        mask = np.zeros((4, 10), dtype=bool)
        assert exposure_gini(scores, mask, 1) > 0.8

    def test_gini_zero_when_no_slots(self):
        scores = np.zeros((1, 3))
        mask = np.ones((1, 3), dtype=bool)
        assert exposure_gini(scores, mask, 2) == 0.0
