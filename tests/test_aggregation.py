"""Tests for the sum aggregator and the robust defense aggregators."""

import numpy as np
import pytest

from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import SumAggregator
from repro.federated.payload import ClientUpdate
from repro.rng import make_rng


def benign_stack(n=9, dim=4, seed=0):
    """Benign gradients clustered near a common mean."""
    rng = make_rng(seed)
    centre = rng.normal(size=dim)
    return centre, centre + 0.01 * rng.normal(size=(n, dim))


class TestSum:
    def test_sums(self):
        grads = np.arange(12, dtype=float).reshape(3, 4)
        np.testing.assert_allclose(SumAggregator().aggregate(grads), grads.sum(axis=0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SumAggregator().aggregate(np.zeros((0, 3)))

    def test_single_gradient(self):
        grads = np.ones((1, 3))
        np.testing.assert_allclose(SumAggregator().aggregate(grads), grads[0])


class TestMedian:
    def test_coordinate_median_times_n(self):
        grads = np.array([[1.0], [2.0], [100.0]])
        np.testing.assert_allclose(MedianAggregator().aggregate(grads), [2.0 * 3])

    def test_outlier_resistant(self):
        centre, grads = benign_stack()
        poisoned = np.vstack([grads, 1000.0 * np.ones((1, 4))])
        agg = MedianAggregator().aggregate(poisoned) / len(poisoned)
        np.testing.assert_allclose(agg, centre, atol=0.05)


class TestTrimmedMean:
    def test_trims_extremes(self):
        grads = np.array([[0.0], [1.0], [2.0], [3.0], [1000.0]])
        agg = TrimmedMeanAggregator(0.2).aggregate(grads)
        np.testing.assert_allclose(agg, [2.0 * 5])  # mean of 1,2,3 times n

    def test_no_trim_when_ratio_zero(self):
        grads = np.array([[1.0], [5.0]])
        agg = TrimmedMeanAggregator(0.0).aggregate(grads)
        np.testing.assert_allclose(agg, [6.0])

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(0.6)


class TestKrum:
    def test_picks_central_gradient(self):
        centre, grads = benign_stack(n=8)
        poisoned = np.vstack([grads, 50.0 * np.ones((2, 4))])
        agg = KrumAggregator(0.2).aggregate(poisoned) / len(poisoned)
        np.testing.assert_allclose(agg, centre, atol=0.05)

    def test_small_stack_falls_back_to_sum(self):
        grads = np.array([[1.0], [2.0]])
        np.testing.assert_allclose(KrumAggregator().aggregate(grads), [3.0])

    def test_selects_actual_member(self):
        _, grads = benign_stack(n=6)
        agg = KrumAggregator(0.1).aggregate(grads) / len(grads)
        assert any(np.allclose(agg, g) for g in grads)


class TestMultiKrumAndBulyan:
    def test_multikrum_excludes_outliers(self):
        centre, grads = benign_stack(n=10)
        poisoned = np.vstack([grads, 100.0 * np.ones((1, 4))])
        agg = MultiKrumAggregator(0.1).aggregate(poisoned) / len(poisoned)
        np.testing.assert_allclose(agg, centre, atol=0.05)

    def test_bulyan_excludes_outliers(self):
        centre, grads = benign_stack(n=12)
        poisoned = np.vstack([grads, 100.0 * np.ones((2, 4))])
        agg = BulyanAggregator(0.1).aggregate(poisoned) / len(poisoned)
        np.testing.assert_allclose(agg, centre, atol=0.05)

    def test_bulyan_small_stack_sums(self):
        grads = np.ones((2, 3))
        np.testing.assert_allclose(BulyanAggregator().aggregate(grads), 2 * np.ones(3))


class TestNormBound:
    def test_clips_to_threshold(self):
        big = ClientUpdate(0, np.array([0]), np.full((1, 4), 10.0))
        small = ClientUpdate(1, np.array([0]), np.full((1, 4), 0.01))
        out = NormBoundFilter(1.0)([big, small])
        assert out[0].total_norm == pytest.approx(1.0)
        assert out[1].total_norm == small.total_norm

    def test_adaptive_threshold_uses_median(self):
        updates = [
            ClientUpdate(i, np.array([0]), np.full((1, 2), float(v)))
            for i, v in enumerate([1, 1, 1, 100])
        ]
        out = NormBoundFilter(0.0)(updates)
        median_norm = updates[0].total_norm
        assert out[3].total_norm == pytest.approx(median_norm)

    def test_empty_passthrough(self):
        assert NormBoundFilter(1.0)([]) == []


class TestSumScaleConvention:
    """All robust aggregators return values on the sum scale."""

    @pytest.mark.parametrize(
        "aggregator",
        [
            MedianAggregator(),
            TrimmedMeanAggregator(0.1),
            KrumAggregator(0.1),
            MultiKrumAggregator(0.1),
            BulyanAggregator(0.1),
        ],
    )
    def test_identical_gradients_equal_sum(self, aggregator):
        grads = np.tile(np.array([1.0, -2.0, 0.5]), (8, 1))
        np.testing.assert_allclose(
            aggregator.aggregate(grads), grads.sum(axis=0), atol=1e-9
        )
