"""Tests for the coordinated defense's ItemScaleClip (repro.defenses.coordinated)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defenses.coordinated import ItemScaleClip
from repro.federated.payload import ClientUpdate


def _update(user_id, grads, item_ids=None, malicious=False):
    grads = np.asarray(grads, dtype=np.float64)
    if item_ids is None:
        item_ids = np.arange(len(grads))
    return ClientUpdate(
        user_id=user_id,
        item_ids=np.asarray(item_ids),
        item_grads=grads,
        malicious=malicious,
    )


class TestConstruction:
    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            ItemScaleClip(factor=0.0)

    def test_rejects_invalid_history(self):
        with pytest.raises(ValueError):
            ItemScaleClip(history=1.0)
        with pytest.raises(ValueError):
            ItemScaleClip(history=-0.1)


class TestClipping:
    def test_empty_round_passes_through(self):
        clip = ItemScaleClip()
        assert clip([]) == []

    def test_benign_scale_rows_untouched(self):
        # All rows share the same norm: nothing exceeds factor * median.
        updates = [_update(i, np.ones((3, 4))) for i in range(5)]
        clipped = ItemScaleClip(factor=2.0)(updates)
        for original, after in zip(updates, clipped):
            assert after is original

    def test_oversized_row_clipped_to_bound(self):
        benign = [_update(i, np.ones((4, 2))) for i in range(9)]
        poison = _update(99, [[100.0, 0.0]], item_ids=[7], malicious=True)
        clipped = ItemScaleClip(factor=2.0, history=0.0)(benign + [poison])
        poisoned_row = clipped[-1].item_grads[0]
        median = np.sqrt(2.0)  # norm of a ones(2) row
        assert np.linalg.norm(poisoned_row) == pytest.approx(2.0 * median)
        # Direction is preserved, only the magnitude is capped.
        assert poisoned_row[1] == 0.0 and poisoned_row[0] > 0.0

    def test_median_is_robust_to_poison_rows(self):
        # One attacker uploading a single huge row cannot drag the
        # median: benign rows dominate the row count.
        benign = [_update(i, np.ones((10, 2))) for i in range(8)]
        poison = _update(99, [[1e6, 0.0]], item_ids=[0])
        clip = ItemScaleClip(factor=2.0, history=0.0)
        clipped = clip(benign + [poison])
        assert np.linalg.norm(clipped[-1].item_grads[0]) == pytest.approx(
            2.0 * np.sqrt(2.0)
        )

    def test_zero_rows_ignored_in_median(self):
        updates = [
            _update(0, np.zeros((5, 2))),
            _update(1, np.ones((2, 2))),
            _update(2, [[10.0, 0.0], [0.0, 0.1]]),
        ]
        clipped = ItemScaleClip(factor=1.0, history=0.0)(updates)
        # Median over positive norms only; the zero update is untouched.
        assert np.allclose(clipped[0].item_grads, 0.0)
        assert np.isfinite(clipped[2].item_grads).all()

    def test_all_zero_round_passes_through(self):
        updates = [_update(0, np.zeros((3, 2)))]
        clipped = ItemScaleClip()(updates)
        assert clipped[0] is updates[0]

    def test_param_grads_preserved(self):
        update = ClientUpdate(
            user_id=0,
            item_ids=np.array([0]),
            item_grads=np.array([[50.0, 0.0]]),
            param_grads=[np.ones(3)],
        )
        small = [_update(i + 1, np.ones((6, 2))) for i in range(4)]
        clipped = ItemScaleClip(factor=1.0, history=0.0)(small + [update])
        assert np.allclose(clipped[-1].param_grads[0], np.ones(3))
        assert clipped[-1].malicious == update.malicious
        assert clipped[-1].user_id == update.user_id


class TestAdversarialCalibration:
    def test_row_flooding_cannot_lower_the_scale(self):
        # Availability attack on the calibration itself: one client
        # uploads thousands of near-zero rows to drag a naive global
        # median down and cripple benign training. Median-of-medians
        # gives each client one vote, so the scale stays benign.
        benign = [_update(i, np.ones((5, 2))) for i in range(4)]
        flood = _update(99, 1e-4 * np.ones((500, 2)), item_ids=np.arange(500))
        clip = ItemScaleClip(factor=2.0, history=0.0)
        clipped = clip(benign + [flood])
        benign_scale = np.sqrt(2.0)
        assert clip._smoothed_median == pytest.approx(benign_scale)
        # Benign rows untouched at the benign-calibrated bound.
        for update in clipped[:4]:
            assert np.allclose(update.item_grads, 1.0)

    def test_single_huge_client_cannot_raise_the_scale(self):
        benign = [_update(i, np.ones((5, 2))) for i in range(4)]
        heavy = _update(99, 50.0 * np.ones((500, 2)), item_ids=np.arange(500))
        clip = ItemScaleClip(factor=2.0, history=0.0)
        clip(benign + [heavy])
        assert clip._smoothed_median == pytest.approx(np.sqrt(2.0))


class TestParamClipping:
    def _with_params(self, user_id, tensor_norm, malicious=False):
        grad = np.zeros(4)
        grad[0] = tensor_norm
        return ClientUpdate(
            user_id=user_id,
            item_ids=np.array([0]),
            item_grads=np.ones((1, 2)),
            param_grads=[grad],
            malicious=malicious,
        )

    def test_oversized_param_tensor_clipped(self):
        benign = [self._with_params(i, 1.0) for i in range(5)]
        poison = self._with_params(99, 100.0, malicious=True)
        clipped = ItemScaleClip(factor=2.0, history=0.0, include_params=True)(
            benign + [poison]
        )
        poisoned = clipped[-1].param_grads[0]
        assert np.linalg.norm(poisoned) == pytest.approx(2.0)
        for update in clipped[:5]:
            assert np.linalg.norm(update.param_grads[0]) == pytest.approx(1.0)

    def test_param_clipping_off_by_default(self):
        # Measured to backfire on DL-FRS (see coordinated.py docstring),
        # so the default must leave parameter gradients untouched.
        benign = [self._with_params(i, 1.0) for i in range(5)]
        poison = self._with_params(99, 100.0, malicious=True)
        clipped = ItemScaleClip(factor=2.0, history=0.0)(benign + [poison])
        assert np.linalg.norm(clipped[-1].param_grads[0]) == pytest.approx(100.0)

    def test_clients_without_params_are_fine(self):
        mixed = [self._with_params(0, 1.0), _update(1, np.ones((3, 2)))]
        clipped = ItemScaleClip(factor=2.0, history=0.0, include_params=True)(mixed)
        assert clipped[1].param_grads == []


class TestSmoothing:
    def test_history_smooths_across_rounds(self):
        clip = ItemScaleClip(factor=1.0, history=0.5)
        clip([_update(0, np.ones((4, 4)))])  # median 2.0
        first = clip._smoothed_median
        clip([_update(0, 4.0 * np.ones((4, 4)))])  # round median 8.0
        assert first == pytest.approx(2.0)
        assert clip._smoothed_median == pytest.approx(0.5 * 2.0 + 0.5 * 8.0)

    def test_zero_history_tracks_round_median(self):
        clip = ItemScaleClip(factor=1.0, history=0.0)
        clip([_update(0, np.ones((4, 4)))])
        clip([_update(0, 4.0 * np.ones((4, 4)))])
        assert clip._smoothed_median == pytest.approx(8.0)

    @given(st.floats(0.1, 10.0), st.floats(0.0, 0.9))
    @settings(max_examples=30, deadline=None)
    def test_clipped_rows_never_exceed_bound(self, row_scale, history):
        clip = ItemScaleClip(factor=2.0, history=history)
        rng = np.random.default_rng(0)
        updates = [
            _update(i, row_scale * rng.normal(0, 1, (5, 3))) for i in range(4)
        ]
        updates.append(_update(9, [[1e4, 0.0, 0.0]], item_ids=[1]))
        clipped = clip(updates)
        bound = 2.0 * clip._smoothed_median + 1e-9
        for update in clipped:
            assert (np.linalg.norm(update.item_grads, axis=1) <= bound).all()
