"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.poison_proportion import expected_poison_proportion
from repro.attacks.base import bounded_step_gradient
from repro.attacks.mining import DeltaNormTracker
from repro.datasets.sampling import sample_negatives
from repro.defenses.robust import (
    MedianAggregator,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import SumAggregator
from repro.metrics.divergence import softmax, softmax_kl
from repro.metrics.ranking import top_k_items
from repro.models.losses import bce_loss_and_grad, sigmoid
from repro.rng import make_rng

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def grad_stacks(min_rows=1, max_rows=8, dim=3):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_rows, max_rows), st.just(dim)),
        elements=finite_floats,
    )


class TestAggregatorProperties:
    @given(grad_stacks())
    @settings(max_examples=50, deadline=None)
    def test_sum_permutation_invariant(self, grads):
        rng = make_rng(0)
        perm = rng.permutation(len(grads))
        a = SumAggregator().aggregate(grads)
        b = SumAggregator().aggregate(grads[perm])
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(grad_stacks())
    @settings(max_examples=50, deadline=None)
    def test_median_permutation_invariant(self, grads):
        rng = make_rng(1)
        perm = rng.permutation(len(grads))
        a = MedianAggregator().aggregate(grads)
        b = MedianAggregator().aggregate(grads[perm])
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(grad_stacks(min_rows=2))
    @settings(max_examples=50, deadline=None)
    def test_median_within_coordinate_bounds(self, grads):
        agg = MedianAggregator().aggregate(grads) / len(grads)
        assert (agg >= grads.min(axis=0) - 1e-9).all()
        assert (agg <= grads.max(axis=0) + 1e-9).all()

    @given(grad_stacks(min_rows=3))
    @settings(max_examples=50, deadline=None)
    def test_trimmed_mean_within_bounds(self, grads):
        agg = TrimmedMeanAggregator(0.2).aggregate(grads) / len(grads)
        assert (agg >= grads.min(axis=0) - 1e-9).all()
        assert (agg <= grads.max(axis=0) + 1e-9).all()


class TestLossProperties:
    @given(arrays(np.float64, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_range(self, x):
        out = sigmoid(x)
        assert ((out >= 0.0) & (out <= 1.0)).all()

    @given(arrays(np.float64, st.integers(1, 10), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_bce_loss_non_negative(self, logits):
        labels = (logits > 0).astype(float)
        loss, _ = bce_loss_and_grad(logits, labels)
        assert loss >= 0.0

    @given(
        arrays(np.float64, st.integers(1, 10), elements=finite_floats),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bce_grad_bounded(self, logits, positive):
        labels = np.full(len(logits), 1.0 if positive else 0.0)
        _, grad = bce_loss_and_grad(logits, labels)
        # Per-element gradient magnitude can never exceed 1/n.
        assert np.abs(grad).max() <= 1.0 / len(logits) + 1e-12


class TestDivergenceProperties:
    @given(
        arrays(np.float64, st.just(6), elements=finite_floats),
        arrays(np.float64, st.just(6), elements=finite_floats),
    )
    @settings(max_examples=80, deadline=None)
    def test_kl_non_negative(self, p, q):
        assert softmax_kl(p, q) >= -1e-10

    @given(arrays(np.float64, st.tuples(st.integers(1, 5), st.just(4)), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_softmax_simplex(self, x):
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        assert (out >= 0.0).all()


class TestSamplingProperties:
    @given(
        st.integers(0, 30),
        st.integers(1, 20),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_negatives_always_disjoint_and_unique(self, num_pos, count, seed):
        num_items = 50
        rng = make_rng(seed)
        positives = rng.choice(num_items, size=num_pos, replace=False)
        negs = sample_negatives(make_rng(seed + 1), positives, num_items, count)
        assert len(set(negs.tolist())) == len(negs)
        assert not set(negs.tolist()) & set(positives.tolist())
        assert len(negs) == min(count, num_items - num_pos)


class TestRankingProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(5, 20)),
            elements=finite_floats,
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_k_never_returns_train_items(self, scores, k):
        rng = make_rng(3)
        mask = rng.random(scores.shape) < 0.3
        # Keep at least one recommendable item per user.
        mask[:, 0] = False
        tops = top_k_items(scores, mask, k)
        for user in range(scores.shape[0]):
            recommended = tops[user]
            valid = recommended[recommended >= 0]
            assert not mask[user, valid].any()


class TestAttackStepProperties:
    @given(
        arrays(np.float64, st.just(4), elements=finite_floats),
        arrays(np.float64, st.just(4), elements=finite_floats),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_step_never_exceeds_cap(self, old, new, cap):
        grad = bounded_step_gradient(old, new, server_lr=1.0, max_step=cap)
        moved = old - grad
        assert np.linalg.norm(moved - old) <= cap + 1e-9

    @given(
        arrays(np.float64, st.just(4), elements=finite_floats),
        arrays(np.float64, st.just(4), elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_step_moves_towards_target(self, old, new):
        grad = bounded_step_gradient(old, new, server_lr=1.0, max_step=1.0)
        moved = old - grad
        assert np.linalg.norm(moved - new) <= np.linalg.norm(old - new) + 1e-9


class TestPoisonProportionProperties:
    @given(st.floats(1e-6, 1.0), st.floats(0.0, 0.99))
    @settings(max_examples=80, deadline=None)
    def test_eq11_in_unit_interval(self, pj, ratio):
        value = expected_poison_proportion(pj, ratio)
        assert 0.0 <= value <= 1.0

    @given(st.floats(1e-6, 1.0), st.floats(0.01, 0.99))
    @settings(max_examples=80, deadline=None)
    def test_eq11_at_least_malicious_ratio(self, pj, ratio):
        assert expected_poison_proportion(pj, ratio) >= ratio - 1e-12


class TestTrackerProperties:
    @given(
        st.lists(
            arrays(np.float64, st.tuples(st.just(6), st.just(3)), elements=finite_floats),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_accumulated_non_negative_and_monotone(self, matrices):
        tracker = DeltaNormTracker(6)
        previous = np.zeros(6)
        for matrix in matrices:
            tracker.observe(matrix)
            assert (tracker.accumulated >= previous - 1e-12).all()
            previous = tracker.accumulated.copy()
        assert tracker.num_deltas == len(matrices) - 1
