"""Property-based tests for the staleness layers.

Two components hold uploads across round boundaries, and both must
never lose, duplicate or reorder one:

* :class:`repro.federated.faults.StalenessBuffer` — the synchronous
  fault layer's straggler parking lot, keyed by due round.
* :class:`repro.federated.async_engine.StalenessAggregator` — the
  asynchronous engine's FedBuff buffer, flushed by count or deadline.

Hypothesis drives them with randomized arrival/delay schedules and
asserts the invariants the engines rely on: conservation (every entry
accounted exactly once), monotonicity (the staleness discount never
grows with delay), and determinism (same schedule ⇒ same flush order
and bit-identical arrays).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.async_engine import StalenessAggregator
from repro.federated.faults import DeferredUpload, StalenessBuffer
from repro.federated.payload import ClientUpdate

FAST = settings(max_examples=60, deadline=None)


def _update(user_id: int, seed: int, dim: int = 4) -> ClientUpdate:
    rng = np.random.default_rng(seed)
    num_items = int(rng.integers(1, 5))
    item_ids = rng.choice(32, size=num_items, replace=False)
    return ClientUpdate(
        user_id=user_id,
        item_ids=item_ids,
        item_grads=rng.standard_normal((num_items, dim)),
        malicious=bool(user_id % 3 == 0),
    )


def _deferred(user_id: int, seed: int, discount: float) -> DeferredUpload:
    upd = _update(user_id, seed)
    return DeferredUpload(
        user_id=upd.user_id,
        item_ids=upd.item_ids,
        item_grads=upd.item_grads,
        param_grads=[],
        malicious=upd.malicious,
        discount=discount,
        origin_round=0,
    )


#: A randomized deferral schedule: (user_id, due_round) pairs.
schedules = st.lists(
    st.tuples(st.integers(0, 99), st.integers(0, 12)),
    min_size=0,
    max_size=40,
)


class TestStalenessBufferProperties:
    @FAST
    @given(schedule=schedules)
    def test_every_deferral_pops_exactly_once(self, schedule):
        buffer = StalenessBuffer()
        for uid, due in schedule:
            buffer.defer(due, _deferred(uid, uid, 0.5))
        assert buffer.pending == len(schedule)
        popped = []
        for round_idx in range(14):
            popped.extend(buffer.pop_due(round_idx))
            # Popping the same round again yields nothing.
            assert buffer.pop_due(round_idx) == []
        assert buffer.pending == 0
        assert len(popped) == len(schedule)

    @FAST
    @given(schedule=schedules)
    def test_fifo_within_each_due_round(self, schedule):
        buffer = StalenessBuffer()
        for order, (uid, due) in enumerate(schedule):
            upload = _deferred(uid, uid, 0.5)
            # Record the insertion order in the origin_round field.
            upload = DeferredUpload(
                user_id=upload.user_id,
                item_ids=upload.item_ids,
                item_grads=upload.item_grads,
                param_grads=upload.param_grads,
                malicious=upload.malicious,
                discount=upload.discount,
                origin_round=order,
            )
            buffer.defer(due, upload)
        for round_idx in range(14):
            orders = [u.origin_round for u in buffer.pop_due(round_idx)]
            assert orders == sorted(orders)

    @FAST
    @given(
        delay=st.integers(1, 8),
        discount=st.floats(0.05, 1.0),
    )
    def test_discount_monotone_in_delay(self, delay, discount):
        shallow = _deferred(1, 1, discount**delay)
        deeper = _deferred(1, 1, discount ** (delay + 1))
        norm_shallow = np.abs(shallow.discounted_grads()).sum()
        norm_deeper = np.abs(deeper.discounted_grads()).sum()
        assert norm_deeper <= norm_shallow + 1e-12


#: Buffered-aggregation schedules: (user_id, origin_version) pairs
#: flushed at a version at or after every origin.
agg_schedules = st.lists(
    st.tuples(st.integers(0, 99), st.integers(0, 6)),
    min_size=0,
    max_size=30,
)


class TestStalenessAggregatorProperties:
    @FAST
    @given(schedule=agg_schedules, current=st.integers(6, 10),
           max_staleness=st.integers(0, 8))
    def test_conservation(self, schedule, current, max_staleness):
        agg = StalenessAggregator(0.5, max_staleness)
        for uid, origin in schedule:
            agg.add(_update(uid, uid), origin)
        assert len(agg) == len(schedule)
        result = agg.flush(current)
        # Every buffered entry either applied or dropped; buffer empty.
        assert result.applied + result.stale_dropped == len(schedule)
        assert result.batch.num_clients == result.applied
        assert len(agg) == 0
        # A second flush is empty, not a replay.
        again = agg.flush(current + 1)
        assert again.applied == 0 and again.stale_dropped == 0

    @FAST
    @given(schedule=agg_schedules, current=st.integers(6, 10))
    def test_flush_deterministic_and_order_preserving(self, schedule, current):
        def run():
            agg = StalenessAggregator(0.5, max_staleness=0)
            for uid, origin in schedule:
                agg.add(_update(uid, uid), origin)
            return agg.flush(current)

        a, b = run(), run()
        assert a.applied == b.applied
        assert a.batch.user_ids.tobytes() == b.batch.user_ids.tobytes()
        assert a.batch.item_grads.tobytes() == b.batch.item_grads.tobytes()
        # Arrival order is preserved through the flush.
        assert list(a.batch.user_ids) == [uid for uid, _ in schedule]

    @FAST
    @given(uid=st.integers(0, 99), origin=st.integers(0, 6),
           extra=st.integers(1, 4))
    def test_discount_monotone_in_flush_delay(self, uid, origin, extra):
        def flushed_norm(current):
            agg = StalenessAggregator(0.5, max_staleness=0)
            agg.add(_update(uid, uid), origin)
            return np.abs(agg.flush(current).batch.item_grads).sum()

        near = flushed_norm(origin + 1)
        far = flushed_norm(origin + 1 + extra)
        assert far <= near + 1e-12

    @FAST
    @given(schedule=agg_schedules)
    def test_fresh_uploads_pass_through_untouched(self, schedule):
        agg = StalenessAggregator(0.25, max_staleness=0)
        originals = []
        for uid, _ in schedule:
            upd = _update(uid, uid)
            originals.append(upd.item_grads.copy())
            agg.add(upd, 7)  # origin == flush version: delay 0
        result = agg.flush(7)
        assert result.stale_applied == 0
        row = 0
        for grads in originals:
            got = result.batch.item_grads[row : row + len(grads)]
            assert got.tobytes() == grads.tobytes()
            row += len(grads)

    @FAST
    @given(current=st.integers(3, 8), max_staleness=st.integers(1, 5))
    def test_max_staleness_boundary(self, current, max_staleness):
        agg = StalenessAggregator(0.5, max_staleness)
        at_limit = current - max_staleness        # delay == max: kept
        beyond = current - max_staleness - 1      # delay == max+1: dropped
        agg.add(_update(1, 1), at_limit)
        agg.add(_update(2, 2), beyond)
        result = agg.flush(current)
        assert result.applied == 1
        assert result.stale_dropped == 1
        assert result.max_delay == max_staleness
