"""fsck: offline integrity audit and its CLI front-end."""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.cli import main
from repro.federated.simulation import EvalRecord, SimulationResult
from repro.persistence import (
    QUARANTINE_SUFFIX,
    checkpoint_path,
    fsck_paths,
    save_checkpoint,
    save_result,
    save_sweep_entry,
)


def _result() -> SimulationResult:
    return SimulationResult(
        exposure=0.25,
        hit_ratio=0.5,
        targets=np.array([3, 7]),
        rounds_run=10,
        history=[EvalRecord(10, 0.25, 0.5)],
        seconds_per_round=0.01,
    )


def _populate(root) -> dict[str, str]:
    """A small tree with one of everything fsck understands."""
    paths = {}
    paths["entry"] = str(root / "cache" / "aaaa.json")
    save_sweep_entry(paths["entry"], key="aaaa", kind="er_hr", values=[[1.0, 2.0]])
    paths["result"] = str(root / "results" / "result.json")
    save_result(_result(), paths["result"])
    paths["checkpoint"] = checkpoint_path(str(root / "ckpt"), 10)
    save_checkpoint(paths["checkpoint"], {"round": 10})
    return paths


class TestFsckPaths:
    def test_clean_tree_verifies_everything(self, tmp_path):
        _populate(tmp_path)
        report = fsck_paths(str(tmp_path))
        assert report.clean
        assert report.verified == 3
        assert report.corrupt == 0
        assert report.corrupt_paths == []

    def test_bit_flip_detected_per_artifact(self, tmp_path):
        paths = _populate(tmp_path)
        for path in paths.values():
            blob = bytearray(open(path, "rb").read())
            blob[len(blob) // 2] ^= 0x10
            with open(path, "wb") as handle:
                handle.write(bytes(blob))
        report = fsck_paths(str(tmp_path))
        assert not report.clean
        assert report.corrupt == 3
        assert sorted(report.corrupt_paths) == sorted(paths.values())
        # Without --repair nothing was moved.
        assert all(os.path.exists(path) for path in paths.values())

    def test_truncation_detected(self, tmp_path):
        paths = _populate(tmp_path)
        for path in paths.values():
            blob = open(path, "rb").read()
            with open(path, "wb") as handle:
                handle.write(blob[: len(blob) // 2])
        assert fsck_paths(str(tmp_path)).corrupt == 3

    def test_repair_quarantines_corrupt_files(self, tmp_path):
        paths = _populate(tmp_path)
        with open(paths["entry"], "w") as handle:
            handle.write("{ torn")
        report = fsck_paths(str(tmp_path), repair=True)
        assert report.corrupt == 1
        assert report.repaired == 1
        assert not os.path.exists(paths["entry"])
        assert os.path.exists(paths["entry"] + QUARANTINE_SUFFIX)
        # A second pass counts the specimen, and the tree is clean.
        second = fsck_paths(str(tmp_path), repair=True)
        assert second.clean
        assert second.quarantined_found == 1

    def test_legacy_digestless_files_counted_not_flagged(self, tmp_path):
        entry = tmp_path / "cache" / "bbbb.json"
        entry.parent.mkdir()
        entry.write_text(json.dumps({"key": "bbbb", "values": [[1.0]]}))
        report = fsck_paths(str(tmp_path))
        assert report.clean
        assert report.legacy == 1

    def test_legacy_v2_checkpoint_counted_not_flagged(self, tmp_path):
        path = checkpoint_path(str(tmp_path), 5)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump({"version": "ckpt-v2", "payload": {"round": 5}}, handle)
        report = fsck_paths(str(tmp_path))
        assert report.clean
        assert report.legacy == 1

    def test_foreign_files_skipped_untouched(self, tmp_path):
        foreign = tmp_path / "notes.json"
        foreign.write_text(json.dumps([1, 2, 3]))
        npz = tmp_path / "model.npz"
        npz.write_bytes(b"\x00\x01binary")
        report = fsck_paths(str(tmp_path), repair=True)
        assert report.clean
        assert report.skipped == 2
        assert foreign.exists() and npz.exists()

    def test_leases_and_tmp_counted_separately(self, tmp_path):
        (tmp_path / "aaaa.json.lease").write_text("{}")
        (tmp_path / "bbbb.json.12345.tmp").write_text("{ partial")
        report = fsck_paths(str(tmp_path))
        assert report.clean
        assert report.leases == 1
        assert report.skipped == 1

    def test_single_file_target(self, tmp_path):
        path = str(tmp_path / "entry.json")
        save_sweep_entry(path, key="k", kind="er_hr", values=[[1.0]])
        assert fsck_paths(path).verified == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fsck_paths(str(tmp_path / "nope"))


class TestFsckCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _populate(tmp_path)
        assert main(["fsck", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 verified" in out
        assert "0 corrupt" in out

    def test_corrupt_tree_exits_nonzero_and_lists_paths(self, tmp_path, capsys):
        paths = _populate(tmp_path)
        with open(paths["entry"], "w") as handle:
            handle.write("{ torn")
        assert main(["fsck", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert paths["entry"] in out

    def test_repair_flag_quarantines(self, tmp_path, capsys):
        paths = _populate(tmp_path)
        with open(paths["entry"], "w") as handle:
            handle.write("{ torn")
        assert main(["fsck", "--repair", str(tmp_path)]) == 1
        assert os.path.exists(paths["entry"] + QUARANTINE_SUFFIX)
        assert main(["fsck", str(tmp_path)]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fsck", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err
