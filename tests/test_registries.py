"""Tests for the attack and defense registries."""

import numpy as np
import pytest

from repro.attacks.registry import (
    ATTACK_NAMES,
    build_malicious_clients,
    num_malicious_for_ratio,
)
from repro.config import AttackConfig, DefenseConfig
from repro.defenses.registry import (
    DEFENSE_NAMES,
    build_server_defense,
    client_regularizer_factory,
)
from repro.defenses.coordinated import ItemScaleClip
from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import SumAggregator


class TestMaliciousCount:
    def test_ratio_against_total_population(self):
        # 5% of the total population: m / (benign + m) = 0.05.
        benign = 950
        m = num_malicious_for_ratio(benign, 0.05)
        assert m / (benign + m) == pytest.approx(0.05, abs=0.002)

    def test_zero_ratio(self):
        assert num_malicious_for_ratio(100, 0.0) == 0

    def test_at_least_one_for_positive_ratio(self):
        assert num_malicious_for_ratio(5, 0.01) == 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            num_malicious_for_ratio(10, 1.0)


class TestAttackRegistry:
    def test_all_names_buildable(self, tiny_dataset):
        for name in ATTACK_NAMES:
            clients = build_malicious_clients(
                name,
                dataset=tiny_dataset,
                config=AttackConfig(name=name),
                targets=np.array([3]),
                embedding_dim=4,
                num_malicious=2,
                first_user_id=100,
            )
            if name == "none":
                assert clients == []
            else:
                assert len(clients) == 2

    def test_unknown_name_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown attack"):
            build_malicious_clients(
                "ghost",
                dataset=tiny_dataset,
                config=AttackConfig(),
                targets=np.array([0]),
                embedding_dim=4,
                num_malicious=1,
                first_user_id=100,
            )

    def test_user_ids_sequential(self, tiny_dataset):
        clients = build_malicious_clients(
            "pieck_uea",
            dataset=tiny_dataset,
            config=AttackConfig(),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=3,
            first_user_id=40,
        )
        assert [c.user_id for c in clients] == [40, 41, 42]

    def test_team_size_propagated(self, tiny_dataset):
        clients = build_malicious_clients(
            "pieck_ipe",
            dataset=tiny_dataset,
            config=AttackConfig(),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=4,
            first_user_id=40,
        )
        assert all(c.team_size == 4 for c in clients)


class TestDefenseRegistry:
    @pytest.mark.parametrize(
        "name,agg_type,has_filter",
        [
            ("none", SumAggregator, False),
            ("norm_bound", SumAggregator, True),
            ("median", MedianAggregator, False),
            ("trimmed_mean", TrimmedMeanAggregator, False),
            ("krum", KrumAggregator, False),
            ("multi_krum", MultiKrumAggregator, False),
            ("bulyan", BulyanAggregator, False),
            ("regularization", SumAggregator, False),
            ("hybrid", SumAggregator, True),
        ],
    )
    def test_server_components(self, name, agg_type, has_filter):
        aggregator, update_filter = build_server_defense(DefenseConfig(name=name))
        assert isinstance(aggregator, agg_type)
        assert (update_filter is not None) == has_filter
        if has_filter:
            assert isinstance(update_filter, NormBoundFilter)

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            build_server_defense(DefenseConfig(name="firewall"))

    def test_regularizer_factory_only_for_client_side_defenses(self):
        assert client_regularizer_factory(DefenseConfig(name="median"), 10) is None
        for name in ("regularization", "hybrid"):
            factory = client_regularizer_factory(DefenseConfig(name=name), 10)
            assert factory is not None
            # Each call creates independent per-client state.
            assert factory() is not factory()

    def test_all_names_covered(self):
        assert set(DEFENSE_NAMES) == {
            "none", "norm_bound", "median", "trimmed_mean",
            "krum", "multi_krum", "bulyan", "regularization", "hybrid",
            "scale_clip", "coordinated",
        }

    def test_scale_clip_is_server_side_only(self):
        aggregator, update_filter = build_server_defense(
            DefenseConfig(name="scale_clip")
        )
        assert isinstance(aggregator, SumAggregator)
        assert isinstance(update_filter, ItemScaleClip)
        assert client_regularizer_factory(DefenseConfig(name="scale_clip"), 10) is None

    def test_coordinated_has_both_sides(self):
        _, update_filter = build_server_defense(DefenseConfig(name="coordinated"))
        assert isinstance(update_filter, ItemScaleClip)
        factory = client_regularizer_factory(DefenseConfig(name="coordinated"), 10)
        assert factory is not None
