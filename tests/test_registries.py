"""Tests for the attack and defense registries."""

import numpy as np
import pytest

from repro.attacks.cohort import MaliciousCohort
from repro.attacks.registry import (
    ATTACK_NAMES,
    build_malicious_clients,
    build_malicious_cohort,
    num_malicious_for_ratio,
)
from repro.datasets.synthetic import generate_longtail_dataset
from repro.config import AttackConfig, DefenseConfig
from repro.defenses.registry import (
    DEFENSE_NAMES,
    build_server_defense,
    client_regularizer_factory,
)
from repro.defenses.coordinated import ItemScaleClip
from repro.defenses.robust import (
    BulyanAggregator,
    KrumAggregator,
    MedianAggregator,
    MultiKrumAggregator,
    NormBoundFilter,
    TrimmedMeanAggregator,
)
from repro.federated.aggregation import SumAggregator


class TestMaliciousCount:
    def test_ratio_against_total_population(self):
        # 5% of the total population: m / (benign + m) = 0.05.
        benign = 950
        m = num_malicious_for_ratio(benign, 0.05)
        assert m / (benign + m) == pytest.approx(0.05, abs=0.002)

    def test_zero_ratio(self):
        assert num_malicious_for_ratio(100, 0.0) == 0

    def test_at_least_one_for_positive_ratio(self):
        assert num_malicious_for_ratio(5, 0.01) == 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            num_malicious_for_ratio(10, 1.0)

    def test_ratio_to_zero_boundary(self):
        """Exact 0.0 means no attackers; any positive ratio means >= 1.

        The floor matters: ``round(num_benign * eps / (1 - eps))`` is 0
        for tiny ratios, and a "3 in a thousand" sweep cell must still
        inject one malicious client rather than silently running clean.
        """
        assert num_malicious_for_ratio(1_000_000, 0.0) == 0
        assert num_malicious_for_ratio(10, 1e-9) == 1
        assert num_malicious_for_ratio(1, 0.003) == 1
        with pytest.raises(ValueError):
            num_malicious_for_ratio(10, -0.003)

    def test_large_population_no_overflow(self):
        # A billion benign users at the paper's 5% p-tilde: the count
        # stays an exact Python int (no float wraparound / negatives).
        count = num_malicious_for_ratio(10**9, 0.05)
        assert count == round(10**9 * 0.05 / 0.95)
        assert count > 0
        # Near the upper ratio boundary the count explodes but must
        # remain finite, positive and monotone in the ratio.
        high = num_malicious_for_ratio(1000, 0.999)
        assert high == 999000
        assert high > num_malicious_for_ratio(1000, 0.99)


class TestAttackRegistry:
    def test_all_names_buildable(self, tiny_dataset):
        for name in ATTACK_NAMES:
            clients = build_malicious_clients(
                name,
                dataset=tiny_dataset,
                config=AttackConfig(name=name),
                targets=np.array([3]),
                embedding_dim=4,
                num_malicious=2,
                first_user_id=100,
            )
            if name == "none":
                assert clients == []
            else:
                assert len(clients) == 2

    def test_single_user_dataset_buildable(self):
        """Every attack builds against a degenerate 1-user dataset.

        Exercises the edge paths that read the benign population at
        construction: FedRecAttack's known-user sample collapses to the
        single user, PipAttack's popularity labels still cover the tiny
        catalogue, and the PIECK miners accept the small item count.
        """
        dataset = generate_longtail_dataset(
            num_users=1, num_items=12, num_interactions=6, seed=0, name="one"
        )
        for name in ATTACK_NAMES:
            clients = build_malicious_clients(
                name,
                dataset=dataset,
                config=AttackConfig(name=name),
                targets=np.array([2]),
                embedding_dim=4,
                num_malicious=2,
                first_user_id=1,
            )
            assert len(clients) == (0 if name == "none" else 2)

    def test_cohort_construction_path(self, tiny_dataset):
        """build_malicious_cohort mirrors build_malicious_clients."""
        kwargs = dict(
            dataset=tiny_dataset,
            config=AttackConfig(name="pieck_ipe"),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=3,
            first_user_id=tiny_dataset.num_users,
        )
        cohort = build_malicious_cohort("pieck_ipe", **kwargs)
        assert isinstance(cohort, MaliciousCohort)
        assert cohort.num_clients == 3
        assert cohort.team_size == 3
        assert cohort.miner is not None
        assert build_malicious_cohort("none", **kwargs) is None

    def test_pieck_team_shares_snapshot_cache(self, tiny_dataset):
        clients = build_malicious_clients(
            "pieck_uea",
            dataset=tiny_dataset,
            config=AttackConfig(name="pieck_uea"),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=3,
            first_user_id=tiny_dataset.num_users,
        )
        caches = {id(client._snapshots) for client in clients}
        assert len(caches) == 1
        assert clients[0]._snapshots is not None

    def test_unknown_name_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown attack"):
            build_malicious_clients(
                "ghost",
                dataset=tiny_dataset,
                config=AttackConfig(),
                targets=np.array([0]),
                embedding_dim=4,
                num_malicious=1,
                first_user_id=100,
            )

    def test_user_ids_sequential(self, tiny_dataset):
        clients = build_malicious_clients(
            "pieck_uea",
            dataset=tiny_dataset,
            config=AttackConfig(),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=3,
            first_user_id=40,
        )
        assert [c.user_id for c in clients] == [40, 41, 42]

    def test_team_size_propagated(self, tiny_dataset):
        clients = build_malicious_clients(
            "pieck_ipe",
            dataset=tiny_dataset,
            config=AttackConfig(),
            targets=np.array([3]),
            embedding_dim=4,
            num_malicious=4,
            first_user_id=40,
        )
        assert all(c.team_size == 4 for c in clients)


class TestDefenseRegistry:
    @pytest.mark.parametrize(
        "name,agg_type,has_filter",
        [
            ("none", SumAggregator, False),
            ("norm_bound", SumAggregator, True),
            ("median", MedianAggregator, False),
            ("trimmed_mean", TrimmedMeanAggregator, False),
            ("krum", KrumAggregator, False),
            ("multi_krum", MultiKrumAggregator, False),
            ("bulyan", BulyanAggregator, False),
            ("regularization", SumAggregator, False),
            ("hybrid", SumAggregator, True),
        ],
    )
    def test_server_components(self, name, agg_type, has_filter):
        aggregator, update_filter = build_server_defense(DefenseConfig(name=name))
        assert isinstance(aggregator, agg_type)
        assert (update_filter is not None) == has_filter
        if has_filter:
            assert isinstance(update_filter, NormBoundFilter)

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            build_server_defense(DefenseConfig(name="firewall"))

    def test_regularizer_factory_only_for_client_side_defenses(self):
        assert client_regularizer_factory(DefenseConfig(name="median"), 10) is None
        for name in ("regularization", "hybrid"):
            factory = client_regularizer_factory(DefenseConfig(name=name), 10)
            assert factory is not None
            # Each call creates independent per-client state.
            assert factory() is not factory()

    def test_all_names_covered(self):
        assert set(DEFENSE_NAMES) == {
            "none", "norm_bound", "median", "trimmed_mean",
            "krum", "multi_krum", "bulyan", "regularization", "hybrid",
            "scale_clip", "coordinated",
        }

    def test_scale_clip_is_server_side_only(self):
        aggregator, update_filter = build_server_defense(
            DefenseConfig(name="scale_clip")
        )
        assert isinstance(aggregator, SumAggregator)
        assert isinstance(update_filter, ItemScaleClip)
        assert client_regularizer_factory(DefenseConfig(name="scale_clip"), 10) is None

    def test_coordinated_has_both_sides(self):
        _, update_filter = build_server_defense(DefenseConfig(name="coordinated"))
        assert isinstance(update_filter, ItemScaleClip)
        factory = client_regularizer_factory(DefenseConfig(name="coordinated"), 10)
        assert factory is not None
