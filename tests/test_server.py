"""Tests for the federated server."""

import numpy as np

from repro.federated.payload import ClientUpdate
from repro.federated.server import Server
from repro.models.mf import MFModel
from repro.models.ncf import NCFModel


class TestSampling:
    def test_sample_size(self):
        server = Server(MFModel(10, 4), lr=1.0, seed=0)
        assert len(server.sample_users(100, 32, 0)) == 32

    def test_sample_capped_at_population(self):
        server = Server(MFModel(10, 4), lr=1.0, seed=0)
        sampled = server.sample_users(8, 32, 0)
        assert len(sampled) == 8

    def test_no_replacement(self):
        server = Server(MFModel(10, 4), lr=1.0, seed=0)
        sampled = server.sample_users(50, 40, 3)
        assert len(np.unique(sampled)) == 40

    def test_deterministic_per_round(self):
        a = Server(MFModel(10, 4), lr=1.0, seed=5)
        b = Server(MFModel(10, 4), lr=1.0, seed=5)
        np.testing.assert_array_equal(
            a.sample_users(100, 10, 7), b.sample_users(100, 10, 7)
        )

    def test_rounds_differ(self):
        server = Server(MFModel(10, 4), lr=1.0, seed=5)
        assert not np.array_equal(
            server.sample_users(100, 10, 0), server.sample_users(100, 10, 1)
        )


class TestItemUpdates:
    def test_sum_aggregation_applied(self):
        model = MFModel(10, 4, seed=1)
        server = Server(model, lr=0.5)
        before = model.item_embeddings[3].copy()
        updates = [
            ClientUpdate(0, np.array([3]), np.ones((1, 4))),
            ClientUpdate(1, np.array([3]), np.ones((1, 4))),
        ]
        server.apply_updates(updates)
        np.testing.assert_allclose(model.item_embeddings[3], before - 0.5 * 2.0)

    def test_untouched_items_unchanged(self):
        model = MFModel(10, 4, seed=1)
        before = model.item_embeddings.copy()
        server = Server(model, lr=0.5)
        server.apply_updates([ClientUpdate(0, np.array([3]), np.ones((1, 4)))])
        unchanged = np.delete(np.arange(10), 3)
        np.testing.assert_array_equal(
            model.item_embeddings[unchanged], before[unchanged]
        )

    def test_empty_updates_noop(self):
        model = MFModel(10, 4, seed=1)
        before = model.item_embeddings.copy()
        Server(model, lr=0.5).apply_updates([])
        np.testing.assert_array_equal(model.item_embeddings, before)

    def test_update_filter_applied(self):
        model = MFModel(10, 4, seed=1)
        calls = []

        def spy_filter(updates):
            calls.append(len(updates))
            return []

        server = Server(model, lr=0.5, update_filter=spy_filter)
        before = model.item_embeddings.copy()
        server.apply_updates([ClientUpdate(0, np.array([1]), np.ones((1, 4)))])
        assert calls == [1]
        np.testing.assert_array_equal(model.item_embeddings, before)


class TestParamUpdates:
    def test_ncf_params_updated(self):
        model = NCFModel(6, 4, mlp_layers=(8,), seed=2)
        server = Server(model, lr=0.1)
        params_before = [p.copy() for p in model.interaction_params()]
        grads = [np.ones_like(p) for p in params_before]
        update = ClientUpdate(0, np.array([0]), np.zeros((1, 4)), param_grads=grads)
        server.apply_updates([update])
        for before, current in zip(params_before, model.interaction_params()):
            np.testing.assert_allclose(current, before - 0.1)

    def test_clients_without_param_grads_skipped(self):
        model = NCFModel(6, 4, mlp_layers=(8,), seed=2)
        server = Server(model, lr=0.1)
        params_before = [p.copy() for p in model.interaction_params()]
        server.apply_updates([ClientUpdate(0, np.array([0]), np.zeros((1, 4)))])
        for before, current in zip(params_before, model.interaction_params()):
            np.testing.assert_array_equal(current, before)

    def test_mixed_contributors(self):
        model = NCFModel(6, 4, mlp_layers=(8,), seed=2)
        server = Server(model, lr=1.0)
        params_before = [p.copy() for p in model.interaction_params()]
        grads = [np.ones_like(p) for p in params_before]
        updates = [
            ClientUpdate(0, np.array([0]), np.zeros((1, 4)), param_grads=grads),
            ClientUpdate(1, np.array([1]), np.zeros((1, 4))),  # no params
            ClientUpdate(2, np.array([2]), np.zeros((1, 4)), param_grads=grads),
        ]
        server.apply_updates(updates)
        for before, current in zip(params_before, model.interaction_params()):
            np.testing.assert_allclose(current, before - 2.0)
