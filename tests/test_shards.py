"""Sharded shared-memory client store: parity, lifecycle, hygiene.

The sharded store is a pure re-layout of :class:`ClientStateStore`:
row ``u`` lives in exactly one shard segment and every read/write API
is bit-identical to the dense matrix.  These tests pin that contract,
the manifest round-trip, segment lifecycle (refcounts, unlink-on-close,
fork-inheritance guard), orphan detection for ``repro fsck``, and the
int64 composite-index overflow regression.
"""

import glob
import json
import multiprocessing
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import generate_longtail_dataset
from repro.federated.shards import (
    CSRRaggedList,
    EmbeddingMatrixView,
    ShardManifest,
    ShardedStateStore,
    SharedDatasetExport,
    list_repro_segments,
    orphaned_segments,
    segment_prefix,
    shard_bounds,
    shared_memory_available,
    unlink_segment,
)
from repro.federated.state import ClientStateStore, row_composite_indices

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="/dev/shm not available"
)


def make_dataset(users=50, items=40, seed=5):
    return generate_longtail_dataset(
        num_users=users, num_items=items, num_interactions=users * 8, seed=seed
    )


def make_stores(dataset, *, num_shards=4, backend="shm", lr_range=None, seed=9):
    dense = ClientStateStore.build(
        dataset.train_pos, dataset.num_items, 6, seed=seed, init_scale=0.1
    )
    sharded = ShardedStateStore.build(
        dataset.train_pos,
        dataset.num_items,
        6,
        seed=seed,
        init_scale=0.1,
        num_shards=num_shards,
        backend=backend,
        lr_range=lr_range,
    )
    return dense, sharded


# ----------------------------------------------------------------------
# Shard assignment and manifest (property-based)
# ----------------------------------------------------------------------


class TestShardBounds:
    @given(
        num_users=st.integers(min_value=0, max_value=5000),
        num_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_user_in_exactly_one_shard(self, num_users, num_shards):
        bounds = shard_bounds(num_users, num_shards)
        assert bounds[0] == 0 and bounds[-1] == num_users
        assert np.all(np.diff(bounds) >= 0)
        # Contiguous half-open ranges partition [0, num_users): each
        # user id is covered once and shard sizes differ by at most 1.
        sizes = np.diff(bounds)
        assert sizes.sum() == num_users
        if num_users >= num_shards:
            assert sizes.max() - sizes.min() <= 1
            assert sizes.min() >= 1

    @given(num_shards=st.integers(min_value=1, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_shards_clamped_to_user_count(self, num_shards):
        bounds = shard_bounds(7, num_shards)
        assert len(bounds) - 1 == min(num_shards, 7)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestManifest:
    @given(
        num_users=st.integers(min_value=1, max_value=300),
        num_shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_manifest_json_round_trip(self, num_users, num_shards, seed):
        bounds = shard_bounds(num_users, num_shards)
        manifest = ShardManifest(
            token="deadbeef0000",
            pid=os.getpid(),
            backend="shm",
            num_users=num_users,
            num_items=17,
            embedding_dim=6,
            seed=seed,
            config_digest="d" * 64,
            shards=tuple(
                (int(bounds[s]), int(bounds[s + 1]), 3)
                for s in range(len(bounds) - 1)
            ),
            segments=tuple(
                {"emb": f"repro_shm_1_t_emb_{s:04d}"}
                for s in range(len(bounds) - 1)
            ),
            lr_range=None,
        )
        restored = ShardManifest.from_json(manifest.to_json())
        assert restored == manifest
        assert np.array_equal(restored.bounds(), bounds)

    def test_unknown_version_rejected(self):
        ds = make_dataset(users=10)
        _, sharded = make_stores(ds, num_shards=2)
        record = json.loads(sharded.manifest.to_json())
        record["version"] = "shards-v999"
        with pytest.raises(ValueError, match="version"):
            ShardManifest.from_json(json.dumps(record))
        sharded.close()


# ----------------------------------------------------------------------
# Dense / sharded parity
# ----------------------------------------------------------------------


class TestStoreParity:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    @pytest.mark.parametrize("num_shards", [1, 3, 7])
    def test_full_surface_matches_dense(self, backend, num_shards):
        ds = make_dataset()
        dense, sharded = make_stores(
            ds, num_shards=num_shards, backend=backend, lr_range=(0.01, 0.1)
        )
        try:
            assert sharded.num_users == dense.num_users
            assert sharded.embedding_dim == dense.embedding_dim
            rng = np.random.default_rng(0)
            ids = rng.permutation(ds.num_users)[: ds.num_users // 2]
            assert np.array_equal(
                sharded.gather_rows(ids), dense.gather_rows(ids)
            )
            assert np.array_equal(
                sharded.snapshot_embeddings(), dense.snapshot_embeddings()
            )
            assert np.array_equal(
                sharded.embedding_block(5, 31), dense.user_embeddings[5:31]
            )
            for u in (0, ds.num_users // 2, ds.num_users - 1):
                assert np.array_equal(sharded.row(u), dense.user_embeddings[u])
                assert np.array_equal(sharded.positives(u), dense.positives(u))
            assert np.array_equal(
                sharded.train_mask_block(3, 29), dense.train_mask_block(3, 29)
            )
            assert np.array_equal(
                sharded.client_lrs((0.01, 0.1)), dense.client_lrs((0.01, 0.1))
            )
            assert np.array_equal(
                sharded.client_lrs_for((0.01, 0.1), ids),
                dense.client_lrs_for((0.01, 0.1), ids),
            )
            # A range the segments were NOT built for recomputes.
            assert np.array_equal(
                sharded.client_lrs_for((0.2, 0.4), ids),
                dense.client_lrs_for((0.2, 0.4), ids),
            )
            rows = rng.normal(size=(len(ids), 6))
            sharded.scatter_rows(ids, rows)
            dense.scatter_rows(ids, rows)
            assert np.array_equal(
                sharded.snapshot_embeddings(), dense.snapshot_embeddings()
            )
            sharded.set_row(1, np.full(6, 2.5))
            dense.set_row(1, np.full(6, 2.5))
            assert np.array_equal(sharded.row(1), dense.row(1))
        finally:
            sharded.close()

    def test_load_embeddings_round_trip(self):
        ds = make_dataset(users=20)
        dense, sharded = make_stores(ds, num_shards=3)
        try:
            snapshot = dense.snapshot_embeddings()
            sharded.scatter_rows(
                np.arange(ds.num_users),
                np.zeros((ds.num_users, 6)),
            )
            sharded.load_embeddings(snapshot)
            assert np.array_equal(sharded.snapshot_embeddings(), snapshot)
        finally:
            sharded.close()

    def test_embedding_matrix_view_slices(self):
        ds = make_dataset(users=25)
        dense, sharded = make_stores(ds, num_shards=4)
        try:
            view = EmbeddingMatrixView(sharded)
            assert len(view) == ds.num_users
            assert view.shape == (ds.num_users, 6)
            assert np.array_equal(view[4:19], dense.user_embeddings[4:19])
            assert np.array_equal(view[3], dense.user_embeddings[3])
            with pytest.raises(ValueError):
                view[::2]
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Attach semantics
# ----------------------------------------------------------------------


class TestAttach:
    def test_subset_attach_serves_only_its_shards(self):
        ds = make_dataset()
        dense, sharded = make_stores(ds, num_shards=4)
        try:
            bounds = sharded.manifest.bounds()
            attached = ShardedStateStore.attach(
                sharded.manifest.to_json(), shard_ids=[2]
            )
            try:
                lo, hi = int(bounds[2]), int(bounds[3])
                ids = np.arange(lo, hi)
                assert np.array_equal(
                    attached.gather_rows(ids), dense.gather_rows(ids)
                )
                with pytest.raises(KeyError):
                    attached.gather_rows(np.array([0]))
            finally:
                attached.close()
        finally:
            sharded.close()

    def test_attached_writes_are_visible_to_creator(self):
        ds = make_dataset(users=12)
        _, sharded = make_stores(ds, num_shards=2)
        try:
            attached = ShardedStateStore.attach(sharded.manifest.to_json())
            try:
                attached.set_row(5, np.full(6, -1.25))
                assert np.array_equal(sharded.row(5), np.full(6, -1.25))
            finally:
                attached.close()
        finally:
            sharded.close()

    def test_attach_in_forked_child(self):
        ds = make_dataset(users=16)
        dense, sharded = make_stores(ds, num_shards=2)
        manifest_json = sharded.manifest.to_json()
        expected = dense.snapshot_embeddings()

        def child(conn):
            attached = ShardedStateStore.attach(manifest_json)
            conn.send(attached.snapshot_embeddings())
            attached.close()

        try:
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=child, args=(child_conn,))
            proc.start()
            got = parent_conn.recv()
            proc.join(timeout=10)
            assert proc.exitcode == 0
            assert np.array_equal(got, expected)
            # The child exiting must NOT have unlinked the parent's
            # segments (the finalizer is pid-guarded against fork
            # inheritance).
            assert np.array_equal(sharded.snapshot_embeddings(), expected)
        finally:
            sharded.close()

    def test_stale_manifest_rejected(self):
        ds = make_dataset(users=10)
        _, sharded = make_stores(ds, num_shards=2)
        record = json.loads(sharded.manifest.to_json())
        record["pid"] = 2**22 + 1  # beyond default pid_max: never alive
        try:
            with pytest.raises(RuntimeError, match="stale"):
                ShardedStateStore.attach(json.dumps(record))
            ShardedStateStore.attach(
                json.dumps(record), allow_stale=True
            ).close()
        finally:
            sharded.close()

    def test_mmap_backend_refuses_manifest_attach(self):
        ds = make_dataset(users=10)
        _, sharded = make_stores(ds, num_shards=2, backend="mmap")
        try:
            with pytest.raises(RuntimeError, match="mmap"):
                ShardedStateStore.attach(sharded.manifest.to_json())
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Lifecycle: unlink on close, orphan hygiene
# ----------------------------------------------------------------------


def _shm_names(token):
    return glob.glob(f"/dev/shm/repro_shm_*{token}*")


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        ds = make_dataset(users=10)
        _, sharded = make_stores(ds, num_shards=3)
        token = sharded.manifest.token
        assert _shm_names(token)
        sharded.close()
        assert _shm_names(token) == []

    def test_orphan_detection_and_repair(self, tmp_path):
        from repro.persistence import fsck_paths

        def victim():
            ds = make_dataset(users=8)
            store = ShardedStateStore.build(
                ds.train_pos, ds.num_items, 4, seed=1, num_shards=2
            )
            # Die without running any finalizer, like a SIGKILLed
            # round worker.
            os.kill(os.getpid(), signal.SIGKILL)

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=victim)
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL

        orphans = [
            r for r in orphaned_segments() if r["pid"] == proc.pid
        ]
        assert orphans, "SIGKILLed creator left no detectable orphans"
        report = fsck_paths(str(tmp_path))
        assert report.shm_orphans >= len(orphans)
        assert not report.clean
        repaired = fsck_paths(str(tmp_path), repair=True)
        assert repaired.shm_unlinked >= len(orphans)
        assert repaired.clean
        assert [
            r for r in orphaned_segments() if r["pid"] == proc.pid
        ] == []

    def test_live_segments_are_not_orphans(self):
        ds = make_dataset(users=8)
        _, sharded = make_stores(ds, num_shards=2)
        try:
            live = {r["name"] for r in list_repro_segments() if r["alive"]}
            mine = set(
                name
                for names in sharded.manifest.segments
                for name in names.values()
            )
            assert mine <= live
            assert not any(
                r["name"] in mine for r in orphaned_segments()
            )
        finally:
            sharded.close()

    def test_foreign_names_never_touched(self):
        with pytest.raises(ValueError, match="foreign"):
            unlink_segment("psm_something_else")
        assert not any(
            r["name"] == "totally_foreign"
            for r in list_repro_segments()
        )

    def test_segment_prefix_embeds_pid(self):
        prefix = segment_prefix(1234, "cafe")
        assert prefix == "repro_shm_1234_cafe_"


# ----------------------------------------------------------------------
# Shared dataset export (sweep pool transport)
# ----------------------------------------------------------------------


class TestSharedDatasetExport:
    def test_round_trip_preserves_dataset(self):
        ds = make_dataset(users=30)
        export = SharedDatasetExport.create(ds)
        try:
            attached = SharedDatasetExport.attach(export.manifest)
            try:
                got = attached.dataset
                assert got.num_users == ds.num_users
                assert got.num_items == ds.num_items
                assert isinstance(got.train_pos, CSRRaggedList)
                for u in range(ds.num_users):
                    assert np.array_equal(got.train_pos[u], ds.train_pos[u])
                assert np.array_equal(got.test_items, ds.test_items)
                assert np.array_equal(got.popularity(), ds.popularity())
                assert np.array_equal(
                    got.covered_users(np.array([0, 1])),
                    ds.covered_users(np.array([0, 1])),
                )
            finally:
                attached.close()
        finally:
            export.close()
        leftover = [
            r
            for r in list_repro_segments()
            if r["name"] in set(export.manifest["segments"].values())
        ]
        assert leftover == []

    def test_dead_creator_rejected(self):
        ds = make_dataset(users=8)
        export = SharedDatasetExport.create(ds)
        manifest = dict(export.manifest)
        manifest["pid"] = 2**22 + 1
        try:
            with pytest.raises(RuntimeError, match="stale"):
                SharedDatasetExport.attach(manifest)
        finally:
            export.close()


# ----------------------------------------------------------------------
# int64 composite-index overflow regression
# ----------------------------------------------------------------------


class TestCompositeIndexOverflow:
    def test_int32_ids_upcast_before_multiply(self):
        # 2**28 * 16 overflows int32; the composite index must not.
        ids = np.array([2**28, 2**28 + 5], dtype=np.int32)
        flat = row_composite_indices(ids, 16)
        assert flat.dtype == np.int64
        assert flat[0] == 2**28 * 16
        assert flat[-1] == (2**28 + 5) * 16 + 15

    def test_gather_scatter_survive_wide_products(self):
        # A dense store whose (num_users * dim) product would overflow
        # int32 cannot be allocated in a test, so pin the index math
        # itself on the exact composite values.
        ids = np.array([0, 3, 1], dtype=np.int32)
        flat = row_composite_indices(ids, 5)
        expected = np.concatenate(
            [np.arange(u * 5, u * 5 + 5) for u in (0, 3, 1)]
        )
        assert np.array_equal(flat, expected)

    def test_store_gather_matches_fancy_indexing(self):
        ds = make_dataset(users=30)
        dense = ClientStateStore.build(ds.train_pos, ds.num_items, 6, seed=2)
        ids = np.array([7, 0, 29, 7], dtype=np.int32)
        assert np.array_equal(
            dense.gather_rows(ids), dense.user_embeddings[ids.astype(np.int64)]
        )
