"""Tests for the Property-3 geometry diagnostics (repro.analysis.geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.geometry import (
    AlignmentReport,
    alignment_report,
    centroid_cosine,
    property3_report,
)
from repro.experiments import experiment
from repro.federated.simulation import FederatedSimulation


class TestCentroidCosine:
    def test_identical_sets_give_one(self):
        a = np.random.default_rng(0).normal(0, 1, (5, 4))
        assert centroid_cosine(a, a) == pytest.approx(1.0)

    def test_opposite_sets_give_minus_one(self):
        a = np.ones((3, 4))
        assert centroid_cosine(a, -a) == pytest.approx(-1.0)

    def test_zero_centroid_gives_zero(self):
        a = np.ones((2, 4))
        b = np.stack([np.ones(4), -np.ones(4)])  # centroid is zero
        assert centroid_cosine(a, b) == 0.0

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            centroid_cosine(np.ones(4), np.ones((2, 4)))

    @given(
        arrays(np.float64, (4, 3), elements=st.floats(-10, 10)),
        arrays(np.float64, (5, 3), elements=st.floats(-10, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_in_unit_interval(self, a, b):
        value = centroid_cosine(a, b)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestAlignmentReport:
    def test_perfect_alignment(self):
        users = np.tile(np.array([1.0, 0.0, 0.0]), (6, 1))
        report = alignment_report(users, users[:2])
        assert report.centroid_cos == pytest.approx(1.0)
        assert report.mean_user_cos == pytest.approx(1.0)
        assert report.positive_user_fraction == 1.0
        assert report.norm_ratio == pytest.approx(1.0)

    def test_anti_alignment(self):
        users = np.tile(np.array([1.0, 0.0]), (4, 1))
        report = alignment_report(users, -2.0 * users[:2])
        assert report.centroid_cos == pytest.approx(-1.0)
        assert report.positive_user_fraction == 0.0
        assert report.norm_ratio == pytest.approx(2.0)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            alignment_report(np.empty((0, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            alignment_report(np.ones((2, 3)), np.empty((0, 3)))

    def test_zero_user_norm_is_safe(self):
        users = np.zeros((3, 4))
        report = alignment_report(users, np.ones((2, 4)))
        assert np.isfinite(report.mean_user_cos)
        assert report.norm_ratio == 0.0

    def test_is_frozen_dataclass(self):
        report = alignment_report(np.ones((2, 3)), np.ones((2, 3)))
        assert isinstance(report, AlignmentReport)
        with pytest.raises(AttributeError):
            report.centroid_cos = 0.0


class TestProperty3Report:
    @pytest.fixture(scope="class")
    def sims(self):
        """Short clean runs at q=1 and q=10 on the smallest preset."""
        out = {}
        for q in (1, 10):
            config = experiment(
                "ml-100k", "mf", seed=0, negative_ratio=q, rounds=60
            )
            sim = FederatedSimulation(config)
            sim.run()
            out[q] = sim
        return out

    def test_alignment_holds_at_default_q(self, sims):
        report = property3_report(sims[1])
        assert report.centroid_cos > 0.7
        assert report.positive_user_fraction > 0.8

    def test_alignment_degrades_at_large_q(self, sims):
        # The q=10 breakdown that motivates pseudo-user refinement:
        # the popular-item centroid decouples from the user centroid.
        default = property3_report(sims[1])
        heavy = property3_report(sims[10])
        assert heavy.centroid_cos < default.centroid_cos
