"""Tests for the long-tail synthetic dataset generator."""

import numpy as np
import pytest

from repro.analysis.popularity import longtail_summary
from repro.datasets.synthetic import generate_longtail_dataset


class TestShapes:
    def test_basic_sizes(self, tiny_dataset):
        assert tiny_dataset.num_users == 40
        assert tiny_dataset.num_items == 80
        assert len(tiny_dataset.train_pos) == 40
        assert len(tiny_dataset.test_items) == 40

    def test_every_user_has_test_item(self, tiny_dataset):
        assert (tiny_dataset.test_items >= 0).all()

    def test_test_item_not_in_train(self, tiny_dataset):
        for user in range(tiny_dataset.num_users):
            assert tiny_dataset.test_items[user] not in tiny_dataset.train_set(user)

    def test_min_interactions_respected(self, tiny_dataset):
        for items in tiny_dataset.train_pos:
            assert len(items) >= 2  # 3 minimum minus 1 held out

    def test_train_items_unique_per_user(self, tiny_dataset):
        for items in tiny_dataset.train_pos:
            assert len(np.unique(items)) == len(items)


class TestDistribution:
    def test_longtail_head_share(self):
        data = generate_longtail_dataset(200, 400, 8000, seed=11)
        summary = longtail_summary(data)
        # The defining Fig. 3 property: the head is far over-represented.
        assert summary.head_interaction_share > 0.35
        assert summary.gini > 0.3

    def test_popularity_exponent_controls_skew(self):
        flat = generate_longtail_dataset(
            100, 200, 3000, popularity_exponent=0.1, seed=5
        )
        steep = generate_longtail_dataset(
            100, 200, 3000, popularity_exponent=1.4, seed=5
        )
        assert (
            longtail_summary(steep).head_interaction_share
            > longtail_summary(flat).head_interaction_share
        )

    def test_interaction_budget_roughly_met(self):
        data = generate_longtail_dataset(100, 300, 5000, seed=2)
        total = data.num_train_interactions + int((data.test_items >= 0).sum())
        assert 0.7 * 5000 <= total <= 1.3 * 5000


class TestDeterminism:
    def test_same_seed_identical(self):
        a = generate_longtail_dataset(30, 50, 500, seed=4)
        b = generate_longtail_dataset(30, 50, 500, seed=4)
        np.testing.assert_array_equal(a.test_items, b.test_items)
        for pa, pb in zip(a.train_pos, b.train_pos):
            np.testing.assert_array_equal(pa, pb)

    def test_different_seed_differs(self):
        a = generate_longtail_dataset(30, 50, 500, seed=4)
        b = generate_longtail_dataset(30, 50, 500, seed=5)
        assert any(
            not np.array_equal(pa, pb) for pa, pb in zip(a.train_pos, b.train_pos)
        )


class TestErrors:
    def test_insufficient_interactions_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            generate_longtail_dataset(100, 50, 100, seed=0)
