"""Self-healing sweep pool: crash retry, permanent failure, hang detection.

Worker processes are killed for real (``os._exit``) — these tests
exercise the actual ``BrokenProcessPool`` recovery path, not a
simulated exception.  The executors are module-level and keyed by
marker files under the cell's ``payload`` directory, so behaviour is
per-cell and survives the respawned pools.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.config import DatasetConfig, ExperimentConfig, ModelConfig, TrainConfig
from repro.experiments.sweep import (
    CellSpec,
    SweepExecutionError,
    SweepRunner,
    register_cell_kind,
)


def _config(seed: int = 3) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=DatasetConfig(name="custom", scale=0.08, seed=5),
        model=ModelConfig(kind="mf", embedding_dim=8, seed=seed),
        train=TrainConfig(rounds=2, users_per_round=8, lr=1.0),
        seed=seed,
    )


def _cells(kind: str, marker_dir: str, count: int = 4) -> list[CellSpec]:
    return [
        CellSpec(
            config=_config(seed=3 + index),
            kind=kind,
            payload=(marker_dir, index),
        )
        for index in range(count)
    ]


def _crash_once(spec: CellSpec, dataset) -> list[list[float]]:
    """Kill the hosting worker the first time each cell runs."""
    marker_dir, index = spec.payload
    marker = os.path.join(marker_dir, f"ran-{index}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return [[float(index), 1.0]]


def _always_crash(spec: CellSpec, dataset) -> list[list[float]]:
    os._exit(1)


def _hang(spec: CellSpec, dataset) -> list[list[float]]:
    time.sleep(120)
    return [[0.0, 0.0]]


register_cell_kind("test_crash_once", _crash_once)
register_cell_kind("test_always_crash", _always_crash)
register_cell_kind("test_hang", _hang)


class TestCrashRecovery:
    def test_killed_workers_are_retried_to_completion(self, tmp_path):
        # 4 cells that each kill their first worker, on a 2-worker
        # pool: every attempt "first-runs" at most 2 new cells before
        # the pool breaks, so completion needs several respawns.
        runner = SweepRunner(workers=2, max_retries=5, retry_backoff=0.01)
        cells = _cells("test_crash_once", str(tmp_path))
        results = runner.run(cells, {"default": DatasetConfig(name="custom", scale=0.08, seed=5)})
        assert results == [[[float(i), 1.0]] for i in range(4)]
        assert runner.last_stats.retries > 0
        assert runner.last_stats.failed == 0

    def test_completed_cells_land_in_cache_across_crashes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        datasets = {"default": DatasetConfig(name="custom", scale=0.08, seed=5)}
        runner = SweepRunner(
            workers=2, cache_dir=cache_dir, max_retries=5, retry_backoff=0.01
        )
        first = runner.run(_cells("test_crash_once", marker_dir), datasets)
        # Same sweep again: everything must come from the cache — no
        # marker file is touched, no worker crashes.
        rerun = SweepRunner(workers=2, cache_dir=cache_dir)
        second = rerun.run(_cells("test_crash_once", marker_dir), datasets)
        assert second == first
        assert rerun.last_stats.cache_hits == 4
        assert rerun.last_stats.executed == 0


class TestPermanentFailure:
    def test_exhausted_retries_raise_structured_error(self, tmp_path):
        runner = SweepRunner(workers=2, max_retries=1, retry_backoff=0.01)
        cells = _cells("test_always_crash", str(tmp_path), count=2)
        datasets = {"default": DatasetConfig(name="custom", scale=0.08, seed=5)}
        with pytest.raises(SweepExecutionError) as excinfo:
            runner.run(cells, datasets)
        failures = excinfo.value.failures
        assert {f.index for f in failures} == {0, 1}
        assert all(f.kind == "test_always_crash" for f in failures)
        assert all(f.attempts == 2 for f in failures)
        assert runner.last_stats.failed == 2

    def test_partial_failure_still_caches_survivors(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        datasets = {"default": DatasetConfig(name="custom", scale=0.08, seed=5)}
        good = _cells("test_crash_once", marker_dir, count=2)
        bad = _cells("test_always_crash", marker_dir, count=2)
        runner = SweepRunner(
            workers=2, cache_dir=cache_dir, max_retries=4, retry_backoff=0.01
        )
        with pytest.raises(SweepExecutionError) as excinfo:
            runner.run(good + bad, datasets)
        # The always-crashing cells fail for sure; a flaky cell *may*
        # also exhaust its retries as collateral of the broken pools.
        failed = {f.index for f in excinfo.value.failures}
        assert failed >= {2, 3}
        # Whatever did finish is in the cache: a retry sweep of the
        # recoverable cells completes and serves survivors for free.
        rerun = SweepRunner(
            workers=2, cache_dir=cache_dir, max_retries=5, retry_backoff=0.01
        )
        results = rerun.run(good, datasets)
        assert results == [[[0.0, 1.0]], [[1.0, 1.0]]]
        survivors = 2 - len(failed - {2, 3})
        assert rerun.last_stats.cache_hits >= survivors


@pytest.mark.slow
class TestHangDetection:
    def test_hung_workers_are_terminated_and_reported(self, tmp_path):
        runner = SweepRunner(
            workers=2, max_retries=1, retry_backoff=0.01, cell_timeout=1.0
        )
        cells = _cells("test_hang", str(tmp_path), count=2)
        datasets = {"default": DatasetConfig(name="custom", scale=0.08, seed=5)}
        started = time.perf_counter()
        with pytest.raises(SweepExecutionError) as excinfo:
            runner.run(cells, datasets)
        elapsed = time.perf_counter() - started
        # Two attempts of a 1s timeout plus pool spin-up — nowhere
        # near the 120s the executor tries to sleep.
        assert elapsed < 30.0
        assert all(
            "pool presumed hung" in f.error for f in excinfo.value.failures
        )
        assert runner.last_stats.failed == 2
