"""Property tests: lease protocol invariants and verify-on-read.

Two families of randomised contracts:

* **Lease claim/expiry/reclaim** — under any interleaving of claims,
  releases, expiries and reclaims by any number of owners, the lease
  file holds at most one owner record, at most one reclaimer confirms
  per read window, and a drain over a grid with arbitrarily planted
  stale leases loses no cell.
* **Verify-on-read** — for any truncation or bit-flip of a
  digest-stamped artifact, the loader either returns the original
  values or refuses (quarantine / miss); it never crashes with an
  unstructured error and never silently returns wrong data.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backend import (
    lease_path_for,
    read_lease,
    release_lease,
    try_claim_lease,
    try_reclaim_lease,
)
from repro.persistence import (
    IntegrityError,
    QUARANTINE_SUFFIX,
    load_result,
    load_sweep_entry,
    read_sweep_entry,
    save_result,
    save_sweep_entry,
)

FAST = settings(max_examples=60, deadline=None)


# ----------------------------------------------------------------------
# Lease protocol
# ----------------------------------------------------------------------

#: One protocol step: (owner index, action).  "claim" uses O_CREAT|O_EXCL,
#: "reclaim" the atomic takeover, "release" unlinks, "expire" backdates
#: the mtime (simulating a heartbeat that stopped ttl ago).
_ACTIONS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.sampled_from(["claim", "reclaim", "release", "expire"]),
    ),
    min_size=1,
    max_size=24,
)


class TestLeaseProtocolInvariants:
    @FAST
    @given(actions=_ACTIONS)
    def test_at_most_one_owner_record_at_all_times(self, tmp_path_factory, actions):
        tmp_path = tmp_path_factory.mktemp("lease")
        path = str(tmp_path / "cell.json.lease")
        counters = [0, 0, 0, 0]
        confirmed: str | None = None  # token of the last confirmed owner
        for owner_idx, action in actions:
            counters[owner_idx] += 1
            token = f"w{owner_idx}#{counters[owner_idx]}"
            record = {"owner": f"w{owner_idx}", "token": token}
            if action == "claim":
                if try_claim_lease(path, record):
                    confirmed = token
            elif action == "reclaim":
                if try_reclaim_lease(path, record, token):
                    confirmed = token
            elif action == "release":
                release_lease(path)
                confirmed = None
            elif action == "expire":
                if os.path.exists(path):
                    stale = time.time() - 3600
                    os.utime(path, (stale, stale))
            # Invariant: the file holds exactly one complete record,
            # and (absent interleaved writers) it is the last
            # confirmed owner's.
            current = read_lease(path)
            if current is None:
                # File absent: nobody can believe they own the cell.
                assert confirmed is None
            else:
                assert set(current) == {"owner", "token"}
                if confirmed is not None:
                    assert current["token"] == confirmed

    @FAST
    @given(
        stale_cells=st.sets(st.integers(0, 7), max_size=8),
        live_cells=st.sets(st.integers(0, 7), max_size=3),
    )
    def test_drain_loses_no_cell(self, tmp_path_factory, stale_cells, live_cells):
        """Any mix of stale (dead-owner) and unclaimed cells drains fully.

        Cells with a *live* lease are drained by "the peer" (we
        complete them out-of-band), modelling a healthy worker: the
        drain must adopt those results rather than spin on them.
        """
        from repro.experiments.backend import SharedCacheBackend
        from repro.experiments.sweep import SweepExecutionError

        tmp_path = tmp_path_factory.mktemp("grid")
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        live_cells = live_cells - stale_cells
        total = 8
        keys = [f"cell{i:02d}" for i in range(total)]
        paths = {key: os.path.join(cache_dir, f"{key}.json") for key in keys}
        for index in stale_cells:
            lease = lease_path_for(paths[keys[index]])
            try_claim_lease(lease, {"owner": "dead", "token": f"dead#{index}"})
            stale = time.time() - 3600
            os.utime(lease, (stale, stale))
        for index in live_cells:
            lease = lease_path_for(paths[keys[index]])
            try_claim_lease(lease, {"owner": "live", "token": f"live#{index}"})

        class _Spec:
            def __init__(self, index):
                self.kind = "prop"
                self.dataset_key = "default"
                self.index = index

        specs = [_Spec(i) for i in range(total)]
        done: dict[str, list] = {}

        def store(key, spec, values):
            done[key] = values
            with open(paths[key], "w") as handle:
                json.dump({"key": key, "values": values}, handle)

        served = 0

        def load_cached(key):
            nonlocal served
            if key in done:
                return done[key]
            # Model the live peers finishing their cells while we wait.
            index = keys.index(key)
            if index in live_cells and served < len(live_cells):
                served += 1
                values = [[float(index)]]
                store(key, specs[index], values)
                release_lease(lease_path_for(paths[key]))
                return values
            return None

        import repro.experiments.sweep as sweep_mod

        original = sweep_mod.execute_cell
        sweep_mod.execute_cell = lambda spec, dataset: [[float(spec.index)]]
        try:
            backend = SharedCacheBackend(
                owner="prop-worker",
                lease_ttl=5.0,
                poll_interval=0.001,
                wait_timeout=30.0,
            )
            results = [None] * total
            report = backend.run_pending(
                cells=specs,
                loaded={"default": None},
                pending=[(i, keys[i]) for i in range(total)],
                results=results,
                store=store,
                load_cached=load_cached,
                entry_path=lambda key: paths[key],
            )
        finally:
            sweep_mod.execute_cell = original
        # No cell lost: every slot filled with its own value.
        assert results == [[[float(i)]] for i in range(total)]
        # Every dead worker's lease was reclaimed and counted.
        assert report.reclaimed == len(stale_cells)
        assert report.peer_served == len(live_cells)
        assert report.executed == total - len(live_cells)
        # No lease survives a finished drain.
        assert not [
            name for name in os.listdir(cache_dir) if name.endswith(".lease")
        ]


# ----------------------------------------------------------------------
# Verify-on-read over corrupted artifacts
# ----------------------------------------------------------------------

def _saved_entry(tmp_path) -> tuple[str, dict]:
    path = str(tmp_path / "entry.json")
    values = [[1.25, 2.5], [3.0, 4.75]]
    save_sweep_entry(path, key="k1", kind="er_hr", values=values)
    return path, {"key": "k1", "kind": "er_hr", "values": values}


class TestVerifyOnReadProperties:
    @FAST
    @given(cut=st.integers(0, 200), data=st.data())
    def test_sweep_entry_truncation_never_lies(self, tmp_path_factory, cut, data):
        tmp_path = tmp_path_factory.mktemp("trunc")
        path, original = _saved_entry(tmp_path)
        blob = open(path, "rb").read()
        cut = min(cut, len(blob))
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        entry = load_sweep_entry(path)
        if cut == len(blob):
            assert entry == original  # untouched file still loads
        else:
            assert entry is None  # truncated: a miss, never garbage

    @FAST
    @given(
        offset=st.integers(0, 10_000),
        bit=st.integers(0, 7),
    )
    def test_sweep_entry_bit_flip_never_lies(self, tmp_path_factory, offset, bit):
        tmp_path = tmp_path_factory.mktemp("flip")
        path, original = _saved_entry(tmp_path)
        blob = bytearray(open(path, "rb").read())
        offset = offset % len(blob)
        blob[offset] ^= 1 << bit
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        entry, status = read_sweep_entry(path)
        # Either the flip produced undecodable/mismatching bytes (the
        # entry is quarantined or refused) or — only if the bytes are
        # exactly the original, which a real flip never is — it loads.
        if entry is not None:
            assert entry["values"] == original["values"]
            assert status in ("verified", "legacy")
        else:
            assert status in ("quarantined", "foreign")
        # Never both: a quarantined file is gone from its path.
        if status == "quarantined":
            assert not os.path.exists(path)
            assert os.path.exists(path + QUARANTINE_SUFFIX)

    @FAST
    @given(cut=st.integers(0, 4000))
    def test_result_truncation_raises_integrity_error(self, tmp_path_factory, cut):
        import numpy as np

        from repro.federated.simulation import EvalRecord, SimulationResult

        tmp_path = tmp_path_factory.mktemp("result")
        path = str(tmp_path / "result.json")
        result = SimulationResult(
            exposure=0.25,
            hit_ratio=0.5,
            targets=np.array([3, 7]),
            rounds_run=100,
            history=[EvalRecord(50, 0.1, 0.4), EvalRecord(100, 0.25, 0.5)],
            seconds_per_round=0.01,
        )
        save_result(result, path)
        blob = open(path, "rb").read()
        # Cut at least the closing brace: dropping only the trailing
        # newline leaves the JSON content (and hence its digest) intact,
        # which correctly still loads.
        cut = min(cut, len(blob) - 2)
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        with pytest.raises((IntegrityError, ValueError)):
            load_result(path)
        # A positively identified corruption is moved aside.
        if not os.path.exists(path):
            assert os.path.exists(path + QUARANTINE_SUFFIX)
