"""Tests for softmax-KL, PKL and UCR metrics."""

import numpy as np
import pytest

from repro.datasets.base import InteractionDataset
from repro.metrics.divergence import (
    pairwise_kl,
    softmax,
    softmax_kl,
    softmax_kl_grad_q,
    user_coverage_ratio,
)
from repro.rng import make_rng
from tests.conftest import numeric_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = make_rng(0).normal(size=(4, 6))
        np.testing.assert_allclose(softmax(x).sum(axis=1), np.ones(4))

    def test_shift_invariance(self):
        x = make_rng(1).normal(size=5)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        out = softmax(np.array([1000.0, -1000.0]))
        assert not np.isnan(out).any()


class TestSoftmaxKL:
    def test_identical_vectors_zero(self):
        v = make_rng(2).normal(size=8)
        assert softmax_kl(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self):
        rng = make_rng(3)
        for _ in range(10):
            assert softmax_kl(rng.normal(size=6), rng.normal(size=6)) >= 0.0

    def test_asymmetric(self):
        p = np.array([3.0, 0.0, 0.0])
        q = np.array([1.0, 1.0, 0.0])
        assert softmax_kl(p, q) != pytest.approx(softmax_kl(q, p))

    def test_grad_q_closed_form_matches_numeric(self):
        rng = make_rng(4)
        p = rng.normal(size=5)
        q = rng.normal(size=5)
        grad = softmax_kl_grad_q(p, q)
        numeric = numeric_gradient(lambda x: softmax_kl(p, x), q.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)


class TestPairwiseKL:
    def test_matches_explicit_loop(self):
        rng = make_rng(5)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(2, 4))
        explicit = np.mean(
            [[softmax_kl(x, y) for y in b] for x in a]
        )
        np.testing.assert_allclose(pairwise_kl(a, b), explicit, rtol=1e-10)

    def test_identical_sets_small(self):
        a = make_rng(6).normal(size=(4, 5))
        self_kl = pairwise_kl(a, a)
        other = pairwise_kl(a, make_rng(7).normal(scale=3.0, size=(4, 5)))
        assert self_kl < other

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            pairwise_kl(np.zeros((0, 3)), np.zeros((2, 3)))


class TestUCR:
    def make_dataset(self):
        train_pos = [np.array([0]), np.array([1]), np.array([2, 3])]
        return InteractionDataset("u", 3, 5, train_pos, np.array([4, 4, 4]))

    def test_full_coverage(self):
        data = self.make_dataset()
        assert user_coverage_ratio(data, np.array([0, 1, 2])) == 1.0

    def test_partial_coverage(self):
        data = self.make_dataset()
        assert user_coverage_ratio(data, np.array([0])) == pytest.approx(1 / 3)

    def test_empty_popular_set(self):
        data = self.make_dataset()
        assert user_coverage_ratio(data, np.array([], dtype=np.int64)) == 0.0
