"""Defense audit: why robust aggregation fails in FRS (Section V).

Part 1 computes the paper's theoretical quantity Ẽ(v_j) (Eq. 11): the
expected fraction of poisonous gradients the server receives for an
item, as a function of the item's popularity. Cold items — the natural
attack targets — are overwhelmingly represented by the attacker even
at a 5% malicious ratio, which is exactly the assumption Byzantine-
robust aggregators need to *not* hold.

Part 2 verifies the theory empirically: it runs PIECK-UEA against a
representative robust aggregator (Median) and against the paper's
client-side regularization defense.

Part 3 audits a live attacked run with the server-side audit log and
lines the measured per-item poison share up against the Eq. 11
prediction — the closed form tracks the measurement closely.

Usage::

    python examples/defense_audit.py
"""

import numpy as np

from repro.analysis.audit import poison_share_summary, theory_vs_measured
from repro.analysis.poison_proportion import (
    expected_poison_proportion,
    item_inclusion_probability,
)
from repro.datasets.loaders import load_dataset
from repro.experiments import experiment, run_cell
from repro.experiments.reporting import TableResult
from repro.federated.simulation import FederatedSimulation


def main() -> None:
    config = experiment("ml-100k", "mf", seed=0)
    data = load_dataset(config.dataset)

    print("Part 1 — Eq. 11: expected poison share per item (5% malicious)\n")
    ranking = data.popularity_ranking()
    probes = {
        "most popular": int(ranking[0]),
        "median item": int(ranking[len(ranking) // 2]),
        "coldest item": int(ranking[-1]),
    }
    print(f"{'item kind':>14} {'p_j':>8} {'poison share':>13}")
    for label, item in probes.items():
        pj = item_inclusion_probability(data, item)
        share = expected_poison_proportion(pj, 0.05)
        print(f"{label:>14} {pj:8.4f} {share:13.2%}")
    print(
        "\nMedian/Krum-style defenses need the poison share below 50%;"
        "\nfor cold targets it is far above, so they cannot help.\n"
    )

    print("Part 2 — empirical check (PIECK-UEA on MF-FRS, ML-100K)\n")
    table = TableResult(
        "Defense audit (ER@10 / HR@10, %)", ["Defense", "Result"]
    )
    for defense in ("none", "median", "regularization"):
        cfg = experiment(
            "ml-100k", "mf", attack="pieck_uea", defense=defense, seed=0
        )
        table.add_row(defense, str(run_cell(cfg, dataset=data)))
        print(f"  done: {defense}")
    print()
    print(table)

    print("\nPart 3 — live audit: Eq. 11 prediction vs measured poison share\n")
    cfg = experiment("ml-100k", "mf", attack="pieck_uea", seed=0)
    sim = FederatedSimulation(cfg, dataset=data, audit=True)
    sim.run()
    print(f"{'item':>6} {'predicted':>10} {'measured':>9} {'mass share':>11}")
    for item, predicted, measured in theory_vs_measured(
        sim.audit_log, data, cfg.attack.malicious_ratio
    ):
        mass = poison_share_summary(sim.audit_log, item).mean_mass_share
        print(f"{item:>6} {predicted:10.3f} {measured:9.3f} {mass:11.3f}")
    print(
        "\nThe measured poison count share tracks Eq. 11, and the poison"
        "\n*mass* share is higher still — the attacker's rows are far"
        "\nlarger than benign ones, which is what the coordinated"
        "\ndefense's per-row scale clip exploits."
    )


if __name__ == "__main__":
    main()
