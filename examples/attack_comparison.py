"""Attack comparison across both base models (a mini Table III).

Runs every targeted attack implemented in the library against both
MF-FRS and DL-FRS on a scaled MovieLens-100K, reproducing the paper's
central finding: PIECK needs no prior knowledge and succeeds on *both*
model families, while each baseline fails on at least one.

Usage::

    python examples/attack_comparison.py [--fast]
"""

import sys

from repro.experiments import experiment, run_cell
from repro.experiments.reporting import TableResult

ATTACKS = (
    "none",
    "fedrecattack",
    "pipattack",
    "a_ra",
    "a_hum",
    "pieck_ipe",
    "pieck_uea",
)


def main(fast: bool = False) -> None:
    rounds = {"mf": 60, "ncf": 80} if fast else {"mf": None, "ncf": None}
    table = TableResult(
        "Attack comparison on ML-100K (ER@10 / HR@10, %)",
        ["Attack", "MF-FRS", "DL-FRS"],
    )
    for attack in ATTACKS:
        cells = []
        for kind in ("mf", "ncf"):
            config = experiment(
                "ml-100k", kind, attack=attack, seed=0, rounds=rounds[kind]
            )
            cells.append(str(run_cell(config)))
        table.add_row(attack, *cells)
        print(f"  done: {attack}")
    print()
    print(table)
    print()
    print("PIECK (last two rows) attacks both model types without prior")
    print("knowledge; A-ra/A-hum only poison the learnable DL-FRS tower,")
    print("and FedRecAttack/PipAttack collapse once their priors are masked.")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
