"""Adaptive attack study: refined pseudo-users vs the paper's defense.

PIECK-UEA approximates inaccessible user embeddings with mined popular
item embeddings (Eq. 10). That approximation is a *geometric* bet —
Property 3 — and this example shows both sides of it:

Part 1 measures the geometry directly: how closely the popular-item
centroid tracks the user centroid at the paper's default sampling
ratio q=1 versus the heavy-negative-sampling regime q=10
(supplementary B). At q=10 the bet fails, and with it the raw attack.

Part 2 runs the arms race: the raw Eq. 10 attack and the refined
variant (fake user profiles locally trained on the mined populars,
``repro.attacks.refinement``) at both ratios, without and with the
paper's client-side regularization defense. The refined variant
restores the attack where the geometry breaks — and partially evades
the defense at q=1, an adaptive-attack finding the paper's future-work
section anticipates.

Usage::

    python examples/adaptive_attack.py
"""

from repro.analysis.geometry import property3_report
from repro.datasets.loaders import load_dataset
from repro.experiments import attack_config, experiment, run_cell
from repro.experiments.reporting import TableResult
from repro.federated.simulation import FederatedSimulation


def main() -> None:
    data = load_dataset(experiment("ml-100k", "mf", seed=0).dataset)

    print("Part 1 — Property 3 geometry at q=1 vs q=10 (clean runs)\n")
    print(f"{'q':>3} {'centroid cos':>13} {'mean user cos':>14} {'norm ratio':>11}")
    for q in (1, 10):
        config = experiment("ml-100k", "mf", seed=0, negative_ratio=q)
        sim = FederatedSimulation(config, dataset=data)
        sim.run()
        report = property3_report(sim)
        print(
            f"{q:>3} {report.centroid_cos:13.3f} "
            f"{report.mean_user_cos:14.3f} {report.norm_ratio:11.3f}"
        )
    print(
        "\nAt q=10 the popular-item centroid decouples from the user"
        "\ncentroid: raw popular embeddings stop being user stand-ins.\n"
    )

    print("Part 2 — raw vs refined PIECK-UEA (ER@10 / HR@10, %)\n")
    table = TableResult(
        "Adaptive attack study", ["Source", "Defense", "q=1", "q=10"]
    )
    for source in ("popular", "refined"):
        for defense in ("none", "regularization"):
            attack = attack_config("pieck_uea", uea_pseudo_source=source)
            cells = []
            for q in (1, 10):
                cfg = experiment(
                    "ml-100k", "mf", attack=attack, defense=defense,
                    seed=0, negative_ratio=q,
                )
                cells.append(str(run_cell(cfg, dataset=data)))
            table.add_row(source, defense, *cells)
            print(f"  done: source={source} defense={defense}")
    print()
    print(table)
    print(
        "\nReading: the raw source collapses at q=10 while the refined"
        "\nsource stays effective; under the defense the refined source"
        "\nretains more exposure at q=1 — defenses that only separate"
        "\nusers from *popular item embeddings* do not bind an attacker"
        "\nwho re-derives user geometry from local training dynamics."
    )


if __name__ == "__main__":
    main()
