"""Quickstart: train a federated recommender, attack it, defend it.

Runs three short simulations on a scaled-down MovieLens-100K:

1. clean federated MF training (baseline ER/HR),
2. the same training under the PIECK-UEA poisoning attack,
3. the attacked training with the paper's regularization defense.

Usage::

    python examples/quickstart.py
"""

from repro import AttackConfig, DefenseConfig, FederatedSimulation, replace
from repro.experiments import experiment


def main() -> None:
    base = experiment("ml-100k", "mf", rounds=120, seed=0)

    print("1) Clean federated training ...")
    clean = FederatedSimulation(base).run()
    print(f"   ER@10 = {100 * clean.exposure:6.2f}%   HR@10 = {100 * clean.hit_ratio:5.2f}%")

    print("2) PIECK-UEA attack (5% malicious users) ...")
    attacked_cfg = replace(
        base, attack=AttackConfig(name="pieck_uea", malicious_ratio=0.05)
    )
    attacked = FederatedSimulation(attacked_cfg).run()
    print(f"   ER@10 = {100 * attacked.exposure:6.2f}%   HR@10 = {100 * attacked.hit_ratio:5.2f}%")

    print("3) Same attack against the regularization defense ...")
    defended_cfg = replace(
        attacked_cfg, defense=DefenseConfig(name="regularization")
    )
    defended = FederatedSimulation(defended_cfg).run()
    print(f"   ER@10 = {100 * defended.exposure:6.2f}%   HR@10 = {100 * defended.hit_ratio:5.2f}%")

    print()
    print("The attack multiplies the target item's exposure while leaving")
    print("recommendation quality (HR) intact; the defense collapses the")
    print("exposure back to the clean baseline.")


if __name__ == "__main__":
    main()
