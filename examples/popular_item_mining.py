"""Popular item mining demo (Algorithm 1 / Fig. 4).

Shows the core observation of the paper from an attacker's seat: a
malicious client that only sees the global item-embedding matrix in
the rounds it is sampled can identify the platform's most popular
items purely from Δ-Norm — the accumulated L2 change of each item's
embedding between its observations.

Usage::

    python examples/popular_item_mining.py
"""

import numpy as np

from repro.attacks.mining import PopularItemMiner
from repro.experiments import experiment
from repro.federated.simulation import FederatedSimulation


def main() -> None:
    config = experiment("ml-100k", "mf", seed=1)
    sim = FederatedSimulation(config)
    data = sim.dataset
    print(
        f"Dataset: {data.num_users} users, {data.num_items} items, "
        f"{data.num_train_interactions} interactions"
    )

    # The "attacker": observes the global model every round it would be
    # sampled; here we let it observe every round for clarity.
    miner = PopularItemMiner(data.num_items, mining_rounds=2, num_popular=10)
    round_idx = 0
    while not miner.ready:
        miner.observe(sim.model.item_embeddings)
        sim.run_round(round_idx)
        round_idx += 1

    mined = miner.popular_items()
    rank_of = data.popularity_rank_of()
    true_top = set(data.popularity_ranking()[:10].tolist())

    print(f"\nMined popular items after {round_idx} rounds (N=10):")
    print(f"{'item':>6} {'Δ-Norm rank':>12} {'true pop. rank':>15} {'interactions':>13}")
    popularity = data.popularity()
    for position, item in enumerate(mined):
        print(
            f"{item:>6} {position:>12} {rank_of[item]:>15} {popularity[item]:>13}"
        )

    overlap = len(set(mined.tolist()) & true_top)
    head = int(0.15 * data.num_items)
    in_head = int(np.sum(rank_of[mined] < head))
    print(f"\nOverlap with the true top-10: {overlap}/10")
    print(f"Mined items inside the popular head (top 15%): {in_head}/10")
    print("\nNo interaction data, no popularity levels — only the embedding")
    print("changes a regular participant observes (Properties 1-2).")


if __name__ == "__main__":
    main()
