"""Multi-target promotion campaign (Table VII / IX).

An attacker rarely wants to promote a single item. This example runs
PIECK-UEA campaigns promoting 1, 3 and 5 cold items simultaneously,
comparing the paper's two strategies:

* **Train-Together** — each malicious client optimises poisonous
  gradients for every target jointly;
* **Train-One-Then-Copy** — optimise one target and upload |T| copies
  of its gradient (the paper's preferred, cheaper strategy).

Usage::

    python examples/multi_target_campaign.py
"""

from repro.config import AttackConfig
from repro.experiments import experiment, run_cell
from repro.experiments.reporting import TableResult
from repro.datasets.loaders import load_dataset


def main() -> None:
    shared = load_dataset(experiment("ml-100k", "mf", seed=0).dataset)
    table = TableResult(
        "PIECK-UEA multi-target campaigns (ER@10 / HR@10, %)",
        ["Strategy", "|T|=1", "|T|=3", "|T|=5"],
    )
    for strategy in ("together", "one_then_copy"):
        cells = []
        for count in (1, 3, 5):
            attack = AttackConfig(
                name="pieck_uea",
                malicious_ratio=0.05,
                num_targets=count,
                multi_target_strategy=strategy,
            )
            config = experiment("ml-100k", "mf", attack=attack, seed=0)
            cells.append(str(run_cell(config, dataset=shared)))
            print(f"  done: {strategy}, |T|={count}")
        table.add_row(strategy, *cells)
    print()
    print(table)
    print()
    print("Train-One-Then-Copy avoids the optimisation interference that")
    print("grows with |T| under joint training (supplementary C), which is")
    print("why the paper adopts it for its multi-target experiments.")


if __name__ == "__main__":
    main()
